//! Aggregated simulation statistics.

use std::fmt;

use silo_cache::HierarchyStats;
use silo_memctrl::MemCtrlStats;
use silo_pm::PmStats;
use silo_probe::CycleBreakdown;
use silo_types::Cycles;

use crate::SchemeStats;

/// Per-core execution summary (fairness analysis).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// The core's final local clock.
    pub cycles: Cycles,
    /// Transactions the core committed.
    pub txs_committed: u64,
}

/// Exact sojourn-time (queue + service) latency summary for open-system
/// runs.
///
/// Built from the complete multiset of per-transaction sojourn times —
/// no histogram bucketing or sampling — so percentiles are exact and the
/// summary is bit-for-bit deterministic for a given trace and scheme.
/// Percentiles use the nearest-rank definition: the p-th percentile is
/// `sorted[ceil(p/100 * n) - 1]`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Number of measured transactions (setup transactions excluded).
    pub samples: u64,
    /// Sum of all sojourn times, for mean derivation.
    pub total_cycles: u64,
    /// Median sojourn, cycles.
    pub p50: u64,
    /// 99th-percentile sojourn, cycles.
    pub p99: u64,
    /// 99.9th-percentile sojourn, cycles.
    pub p999: u64,
    /// Worst-case sojourn, cycles.
    pub max: u64,
}

impl LatencyStats {
    /// Summarises a sorted (nondecreasing) slice of sojourn samples.
    /// Returns the all-zero summary for an empty slice.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the slice is not sorted.
    pub fn from_sorted(sorted: &[u64]) -> Self {
        debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        if sorted.is_empty() {
            return LatencyStats::default();
        }
        let rank = |permille: u64| {
            // Nearest rank: ceil(permille/1000 * n), 1-based, as an index.
            let n = sorted.len() as u64;
            let r = (permille * n).div_ceil(1000).max(1);
            sorted[(r - 1) as usize]
        };
        LatencyStats {
            samples: sorted.len() as u64,
            total_cycles: sorted.iter().sum(),
            p50: rank(500),
            p99: rank(990),
            p999: rank(999),
            max: *sorted.last().expect("nonempty"),
        }
    }

    /// Mean sojourn in cycles (0.0 with no samples).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.samples as f64
        }
    }
}

impl fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} samples, mean={:.1} p50={} p99={} p999={} max={}",
            self.samples,
            self.mean(),
            self.p50,
            self.p99,
            self.p999,
            self.max
        )
    }
}

/// Everything a run produced, in one snapshot.
///
/// The two paper-headline metrics:
///
/// * **Write traffic** (Fig 11): [`SimStats::media_writes`] — line programs
///   on the PM physical media.
/// * **Throughput** (Fig 12): [`SimStats::throughput`] — committed
///   transactions per kilocycle of simulated wall-clock.
#[derive(Clone, Debug)]
pub struct SimStats {
    /// Scheme that produced the run.
    pub scheme: &'static str,
    /// Core count.
    pub cores: usize,
    /// Per-core breakdown (empty in delta snapshots).
    pub per_core: Vec<CoreStats>,
    /// Simulated wall-clock: the latest core-local time at the end.
    pub sim_cycles: Cycles,
    /// Transactions that reached `Tx_end`.
    pub txs_committed: u64,
    /// PM device counters.
    pub pm: PmStats,
    /// Memory-controller counters.
    pub mc: MemCtrlStats,
    /// Cache-hierarchy counters.
    pub cache: HierarchyStats,
    /// Logging-scheme counters.
    pub scheme_stats: SchemeStats,
    /// Per-core cycle attribution; present only when the machine's cycle
    /// accountant was enabled for the run. `None` keeps probe-off reports
    /// byte-identical to pre-observability output.
    pub breakdown: Option<CycleBreakdown>,
    /// Sojourn-time summary; present only when the run's streams carried
    /// an open-system arrival schedule. `None` keeps closed-loop reports
    /// byte-identical to pre-arrival-layer output.
    pub latency: Option<LatencyStats>,
}

impl SimStats {
    /// Media line programs (the Fig 11 metric).
    pub fn media_writes(&self) -> u64 {
        self.pm.media_line_writes
    }

    /// Committed transactions per 1000 simulated cycles (the Fig 12
    /// metric; absolute scale is arbitrary, figures normalize to Base).
    pub fn throughput(&self) -> f64 {
        if self.sim_cycles.as_u64() == 0 {
            0.0
        } else {
            self.txs_committed as f64 * 1000.0 / self.sim_cycles.as_u64() as f64
        }
    }

    /// Media writes per committed transaction.
    pub fn media_writes_per_tx(&self) -> f64 {
        if self.txs_committed == 0 {
            0.0
        } else {
            self.media_writes() as f64 / self.txs_committed as f64
        }
    }

    /// Fairness: the ratio of the slowest to the fastest core's committed
    /// transaction count (1.0 = perfectly fair). `None` without per-core
    /// data or with an idle core.
    pub fn fairness(&self) -> Option<f64> {
        let min = self.per_core.iter().map(|c| c.txs_committed).min()?;
        let max = self.per_core.iter().map(|c| c.txs_committed).max()?;
        if min == 0 {
            return None;
        }
        Some(max as f64 / min as f64)
    }
}

impl SimStats {
    /// The difference between this run and an `earlier` run that executed
    /// a strict prefix of the same deterministic workload — the
    /// steady-state measurement trick the figure generators use to exclude
    /// the setup transaction: run N and 2N transactions, subtract.
    ///
    /// # Panics
    ///
    /// Panics if the runs disagree on scheme or core count.
    pub fn delta_from(&self, earlier: &SimStats) -> SimStats {
        assert_eq!(self.scheme, earlier.scheme, "runs must use one scheme");
        assert_eq!(self.cores, earlier.cores, "runs must use one core count");
        SimStats {
            scheme: self.scheme,
            cores: self.cores,
            per_core: Vec::new(),
            sim_cycles: self.sim_cycles.saturating_sub(earlier.sim_cycles),
            txs_committed: self.txs_committed.saturating_sub(earlier.txs_committed),
            pm: self.pm - earlier.pm,
            mc: self.mc - earlier.mc,
            cache: self.cache - earlier.cache,
            scheme_stats: self.scheme_stats - earlier.scheme_stats,
            // A breakdown delta would mix the prefix run's attribution
            // into the suffix; steady-state measurements drop it. The
            // `profile` experiment uses full runs for exact breakdowns.
            breakdown: None,
            // Percentiles do not subtract; open-system latency runs are
            // always measured as full runs with setup excluded via
            // `ArrivalSchedule::measure_from`.
            latency: None,
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{} / {} cores] {} txs in {} ({:.4} tx/kcycle)",
            self.scheme,
            self.cores,
            self.txs_committed,
            self.sim_cycles,
            self.throughput()
        )?;
        writeln!(f, "  pm:     {}", self.pm)?;
        writeln!(f, "  mc:     {}", self.mc)?;
        writeln!(
            f,
            "  cache:  L1 {:?} L2 {:?} L3 {:?}, {} PM writebacks",
            self.cache.l1, self.cache.l2, self.cache.l3, self.cache.pm_writebacks
        )?;
        write!(f, "  scheme: {}", self.scheme_stats)?;
        if let Some(b) = &self.breakdown {
            write!(f, "\n  cycles:")?;
            for cat in silo_probe::CycleCategory::ALL {
                write!(f, " {}={}", cat.name(), b.category_total(cat))?;
            }
        }
        if let Some(l) = &self.latency {
            write!(f, "\n  latency: {l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> SimStats {
        SimStats {
            scheme: "Test",
            cores: 2,
            per_core: vec![
                CoreStats {
                    cycles: Cycles::new(2000),
                    txs_committed: 6,
                },
                CoreStats {
                    cycles: Cycles::new(1500),
                    txs_committed: 4,
                },
            ],
            sim_cycles: Cycles::new(2000),
            txs_committed: 10,
            pm: PmStats {
                media_line_writes: 40,
                ..PmStats::default()
            },
            mc: MemCtrlStats::default(),
            cache: HierarchyStats::default(),
            scheme_stats: SchemeStats::default(),
            breakdown: None,
            latency: None,
        }
    }

    #[test]
    fn throughput_is_txs_per_kilocycle() {
        assert!((stats().throughput() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn media_writes_per_tx() {
        assert!((stats().media_writes_per_tx() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_guards() {
        let mut s = stats();
        s.sim_cycles = Cycles::ZERO;
        s.txs_committed = 0;
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(s.media_writes_per_tx(), 0.0);
    }

    #[test]
    fn fairness_ratio() {
        let s = stats();
        assert!((s.fairness().expect("per-core data") - 1.5).abs() < 1e-9);
        let mut empty = stats();
        empty.per_core.clear();
        assert_eq!(empty.fairness(), None);
    }

    #[test]
    fn display_mentions_scheme_and_cores() {
        let text = format!("{}", stats());
        assert!(text.contains("Test"));
        assert!(text.contains("2 cores"));
    }

    /// Independent nearest-rank reference implementation.
    fn nearest_rank(sorted: &[u64], permille: u64) -> u64 {
        let n = sorted.len() as u64;
        let mut rank = (permille * n).div_ceil(1000);
        if rank == 0 {
            rank = 1;
        }
        sorted[(rank - 1) as usize]
    }

    #[test]
    fn percentiles_match_a_sorted_reference() {
        // Sizes chosen to straddle the interesting rank boundaries:
        // n=1 (all percentiles collapse), n=100 (p99 is the last element),
        // n=1000 (p999 is the last element), n=1001 (it no longer is).
        for n in [1usize, 2, 3, 10, 99, 100, 101, 999, 1000, 1001, 4096] {
            let sorted: Vec<u64> = (0..n as u64).map(|i| i * 3 + 7).collect();
            let l = LatencyStats::from_sorted(&sorted);
            assert_eq!(l.samples, n as u64, "n={n}");
            assert_eq!(l.p50, nearest_rank(&sorted, 500), "p50 n={n}");
            assert_eq!(l.p99, nearest_rank(&sorted, 990), "p99 n={n}");
            assert_eq!(l.p999, nearest_rank(&sorted, 999), "p999 n={n}");
            assert_eq!(l.max, *sorted.last().unwrap(), "max n={n}");
            assert_eq!(l.total_cycles, sorted.iter().sum::<u64>(), "sum n={n}");
        }
    }

    #[test]
    fn percentiles_with_duplicates_and_empty() {
        assert_eq!(LatencyStats::from_sorted(&[]), LatencyStats::default());
        let l = LatencyStats::from_sorted(&[5, 5, 5, 5]);
        assert_eq!((l.p50, l.p99, l.p999, l.max), (5, 5, 5, 5));
        assert!((l.mean() - 5.0).abs() < 1e-9);
        assert_eq!(LatencyStats::default().mean(), 0.0);
    }

    #[test]
    fn latency_display_lists_percentiles() {
        let l = LatencyStats::from_sorted(&[1, 2, 3, 4]);
        let text = format!("{l}");
        assert!(text.contains("p50=2"));
        assert!(text.contains("p999=4"));
        assert!(text.contains("max=4"));
    }
}
