//! An executable per-word crash-consistency specification.
//!
//! The [`TxOracle`](crate::TxOracle) answers *whether* a recovered image
//! satisfies atomic durability; the [`SpecMachine`] explains *why not*. It
//! is a small abstract machine fed by the engine at every durability
//! event: each store, commit, crash-interrupted transaction, and
//! power-racing commit updates a per-word model of the **legally
//! recoverable values** — the last committed value, the pre-crash rollback
//! value, or (for a commit that raced the power cut) the all-or-nothing
//! superposition of both. After recovery, [`SpecMachine::verify`] checks
//! every modelled word of the PM image against its legal set and reports
//! each divergence as a [`SpecViolation`]: the offending word, the values
//! the spec allows, the value found, and the word's recent event history
//! (store/commit/rollback transitions with durability-event indices), so
//! a scheme-vs-oracle divergence is localized to the first offending word
//! instead of a wholesale digest mismatch.
//!
//! The machine deliberately mirrors the oracle's acceptance rules exactly
//! — anything the digest-level oracle accepts, the spec accepts, and vice
//! versa (a differential test in `silo-bench` holds the two against each
//! other across the full scheme matrix). What the spec adds is
//! *localization*, not a different notion of correctness.

use silo_pm::PmDevice;
use silo_types::{FxHashMap, FxHashSet, PhysAddr, TxTag, Word};

/// Most recent per-word transitions kept for violation reports. Older
/// entries are dropped (and counted) — the interesting history of a crash
/// is the recent past.
const HISTORY_CAP: usize = 8;

/// What a per-word history entry records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WordEventKind {
    /// The word was stored by an in-flight transaction (value = new).
    Store,
    /// The word's transaction committed (value = the committed value).
    Commit,
    /// The word's transaction was cut by the crash; it must roll back
    /// (value = the rollback value).
    Rollback,
    /// The word's commit raced the power failure: all-or-nothing
    /// (value = the would-be-committed value).
    Ambiguous,
}

impl WordEventKind {
    /// Stable snake_case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            WordEventKind::Store => "store",
            WordEventKind::Commit => "commit",
            WordEventKind::Rollback => "rollback",
            WordEventKind::Ambiguous => "ambiguous",
        }
    }
}

/// One transition in a word's history.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WordEvent {
    /// Durability-event index (the engine's global event counter) at the
    /// transition.
    pub event: u64,
    /// Core that drove the transition.
    pub core: u32,
    /// Transaction identity at the transition.
    pub tag: TxTag,
    /// Transition kind.
    pub kind: WordEventKind,
    /// The value associated with the transition (see [`WordEventKind`]).
    pub value: Word,
}

/// Bounded per-word history: the last [`HISTORY_CAP`] transitions plus a
/// count of older, dropped ones.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct WordHistory {
    recent: Vec<WordEvent>,
    dropped: u64,
}

impl WordHistory {
    fn push(&mut self, e: WordEvent) {
        if self.recent.len() == HISTORY_CAP {
            self.recent.remove(0);
            self.dropped += 1;
        }
        self.recent.push(e);
    }
}

/// One word whose recovered value is outside its legal set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecViolation {
    /// The offending word address.
    pub addr: PhysAddr,
    /// The values the spec allows at this word after recovery. One entry
    /// for unambiguous words; two (rollback, committed) when the word's
    /// commit raced the power failure and the group tore.
    pub legal: Vec<Word>,
    /// The value actually recovered.
    pub actual: Word,
    /// Durability-event index of the word's most recent transition (0 if
    /// the word has no recorded history).
    pub event: u64,
    /// The word's recent transition history, oldest first.
    pub history: Vec<WordEvent>,
    /// Transitions dropped from the front of the history.
    pub dropped_history: u64,
    /// Which acceptance rule failed (same phrasing as the oracle's
    /// [`Violation::kind`](crate::Violation)).
    pub kind: &'static str,
}

/// The spec machine's verdict on a recovered image.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpecReport {
    /// Distinct modelled words checked.
    pub words_checked: usize,
    /// Violations, sorted by word address (the first entry is the
    /// lowest-addressed offender).
    pub violations: Vec<SpecViolation>,
}

impl SpecReport {
    /// Whether every modelled word recovered to a legal value.
    pub fn is_consistent(&self) -> bool {
        self.violations.is_empty()
    }

    /// The lowest-addressed offending word, if any.
    pub fn first_offender(&self) -> Option<&SpecViolation> {
        self.violations.first()
    }
}

/// Per-core in-flight write set: the spec's view of a transaction that
/// has begun but not yet committed.
#[derive(Clone, Debug, Default)]
struct Pending {
    tag: TxTag,
    writes: FxHashMap<u64, Word>,
}

/// The executable crash-consistency spec (see the module docs).
///
/// Fed by the engine via `on_store` / `on_commit` / `on_ambiguous` /
/// `on_crash_inflight`; queried once after recovery via
/// [`SpecMachine::verify`].
#[derive(Clone, Debug, Default)]
pub struct SpecMachine {
    /// Legal value per word whose last owning transaction committed.
    committed: FxHashMap<u64, Word>,
    /// Rollback value per word touched only by cut-off transactions.
    uncommitted: FxHashMap<u64, Word>,
    /// All-or-nothing groups: `(key, rollback, new)` per word of each
    /// commit that raced the power failure.
    ambiguous: Vec<Vec<(u64, Word, Word)>>,
    /// In-flight write set per core.
    pending: Vec<Pending>,
    /// Bounded transition history per word.
    history: FxHashMap<u64, WordHistory>,
}

impl SpecMachine {
    /// A fresh spec machine with no modelled words.
    pub fn new() -> Self {
        SpecMachine::default()
    }

    fn pending_mut(&mut self, core: usize, tag: TxTag) -> &mut Pending {
        if core >= self.pending.len() {
            self.pending.resize_with(core + 1, Pending::default);
        }
        let p = &mut self.pending[core];
        if p.tag != tag {
            // A new transaction on this core: the previous one was
            // consumed by on_commit / on_ambiguous / on_crash_inflight.
            p.tag = tag;
            p.writes.clear();
        }
        p
    }

    fn record(&mut self, key: u64, e: WordEvent) {
        self.history.entry(key).or_default().push(e);
    }

    /// A store by transaction `tag` on `core` reached the word at `addr`
    /// with value `value`; `event` is the global durability-event index.
    pub fn on_store(&mut self, core: usize, tag: TxTag, addr: PhysAddr, value: Word, event: u64) {
        let key = addr.word_aligned().as_u64();
        self.pending_mut(core, tag).writes.insert(key, value);
        self.record(
            key,
            WordEvent {
                event,
                core: core as u32,
                tag,
                kind: WordEventKind::Store,
                value,
            },
        );
    }

    /// Transaction `tag` on `core` committed: every pending word's legal
    /// value becomes its last written value.
    pub fn on_commit(&mut self, core: usize, tag: TxTag, event: u64) {
        let writes = self.take_pending(core, tag);
        for &(key, value) in &writes {
            self.committed.insert(key, value);
            self.record(
                key,
                WordEvent {
                    event,
                    core: core as u32,
                    tag,
                    kind: WordEventKind::Commit,
                    value,
                },
            );
        }
    }

    /// Transaction `tag` on `core` was cut mid-flight by the crash: every
    /// pending word must roll back to its last committed value (or zero).
    pub fn on_crash_inflight(&mut self, core: usize, tag: TxTag, event: u64) {
        let writes = self.take_pending(core, tag);
        for &(key, _) in &writes {
            let rollback = self.committed.get(&key).copied().unwrap_or(Word::ZERO);
            self.uncommitted.insert(key, rollback);
            self.record(
                key,
                WordEvent {
                    event,
                    core: core as u32,
                    tag,
                    kind: WordEventKind::Rollback,
                    value: rollback,
                },
            );
        }
    }

    /// Transaction `tag`'s commit on `core` raced the power failure:
    /// either outcome is legal, but it must be all-or-nothing across the
    /// transaction's words.
    pub fn on_ambiguous(&mut self, core: usize, tag: TxTag, event: u64) {
        let writes = self.take_pending(core, tag);
        let mut group = Vec::with_capacity(writes.len());
        for &(key, new) in &writes {
            let rollback = self.committed.get(&key).copied().unwrap_or(Word::ZERO);
            group.push((key, rollback, new));
            self.record(
                key,
                WordEvent {
                    event,
                    core: core as u32,
                    tag,
                    kind: WordEventKind::Ambiguous,
                    value: new,
                },
            );
        }
        self.ambiguous.push(group);
    }

    /// Detaches `core`'s pending write set (sorted by word key for
    /// deterministic iteration), leaving it empty for the next tx.
    fn take_pending(&mut self, core: usize, tag: TxTag) -> Vec<(u64, Word)> {
        let p = self.pending_mut(core, tag);
        let mut writes: Vec<(u64, Word)> = p.writes.drain().collect();
        writes.sort_unstable_by_key(|&(k, _)| k);
        writes
    }

    fn violation(
        &self,
        key: u64,
        legal: Vec<Word>,
        actual: Word,
        kind: &'static str,
    ) -> SpecViolation {
        let (history, dropped, event) = match self.history.get(&key) {
            Some(h) => (
                h.recent.clone(),
                h.dropped,
                h.recent.last().map(|e| e.event).unwrap_or(0),
            ),
            None => (Vec::new(), 0, 0),
        };
        SpecViolation {
            addr: PhysAddr::new(key),
            legal,
            actual,
            event,
            history,
            dropped_history: dropped,
            kind,
        }
    }

    /// Checks every modelled word of the recovered image against its
    /// legal value set. The acceptance rules mirror
    /// [`TxOracle::verify`](crate::TxOracle::verify) exactly; the report
    /// adds per-word localization and history.
    pub fn verify(&self, pm: &PmDevice) -> SpecReport {
        let ambiguous_keys: FxHashSet<u64> = self
            .ambiguous
            .iter()
            .flatten()
            .map(|&(key, _, _)| key)
            .collect();
        let mut report = SpecReport::default();

        let mut keys: Vec<u64> = self.committed.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            if ambiguous_keys.contains(&key) {
                continue; // group-checked below
            }
            let legal = self.committed[&key];
            let actual = pm.peek_word(PhysAddr::new(key));
            report.words_checked += 1;
            if actual != legal {
                report.violations.push(self.violation(
                    key,
                    vec![legal],
                    actual,
                    "committed write lost or corrupted",
                ));
            }
        }

        let mut ukeys: Vec<u64> = self.uncommitted.keys().copied().collect();
        ukeys.sort_unstable();
        for key in ukeys {
            if self.committed.contains_key(&key) || ambiguous_keys.contains(&key) {
                continue; // already checked against the committed value
            }
            let legal = self.uncommitted[&key];
            let actual = pm.peek_word(PhysAddr::new(key));
            report.words_checked += 1;
            if actual != legal {
                report.violations.push(self.violation(
                    key,
                    vec![legal],
                    actual,
                    "partial update of uncommitted transaction survived",
                ));
            }
        }

        for group in &self.ambiguous {
            let mut all_new = true;
            let mut all_old = true;
            for &(key, rollback, new) in group {
                let actual = pm.peek_word(PhysAddr::new(key));
                report.words_checked += 1;
                if actual != new {
                    all_new = false;
                }
                if actual != rollback {
                    all_old = false;
                }
            }
            if !all_new && !all_old {
                for &(key, rollback, new) in group {
                    let actual = pm.peek_word(PhysAddr::new(key));
                    if actual != new {
                        report.violations.push(self.violation(
                            key,
                            vec![rollback, new],
                            actual,
                            "ambiguous commit applied partially (torn commit)",
                        ));
                    }
                }
            }
        }

        report.violations.sort_by_key(|v| (v.addr.as_u64(), v.kind));
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_pm::PmDeviceConfig;
    use silo_types::{ThreadId, TxId};

    fn tag(tid: u8, txid: u16) -> TxTag {
        TxTag::new(ThreadId::new(tid), TxId::new(txid))
    }

    #[test]
    fn committed_word_must_hold_committed_value() {
        let mut spec = SpecMachine::new();
        spec.on_store(0, tag(0, 1), PhysAddr::new(0), Word::new(7), 1);
        spec.on_commit(0, tag(0, 1), 2);
        let pm = PmDevice::new(PmDeviceConfig::default());
        let report = spec.verify(&pm);
        assert!(!report.is_consistent());
        let v = report.first_offender().expect("one violation");
        assert_eq!(v.addr, PhysAddr::new(0));
        assert_eq!(v.legal, vec![Word::new(7)]);
        assert_eq!(v.actual, Word::ZERO);
        assert_eq!(v.event, 2, "last transition was the commit at event 2");
        assert_eq!(
            v.history.iter().map(|e| e.kind).collect::<Vec<_>>(),
            vec![WordEventKind::Store, WordEventKind::Commit]
        );

        let mut pm2 = PmDevice::new(PmDeviceConfig::default());
        pm2.write_word(PhysAddr::new(0), Word::new(7));
        assert!(spec.verify(&pm2).is_consistent());
    }

    #[test]
    fn cut_transaction_rolls_back_to_committed_value() {
        let mut spec = SpecMachine::new();
        spec.on_store(0, tag(0, 1), PhysAddr::new(0), Word::new(3), 1);
        spec.on_commit(0, tag(0, 1), 2);
        spec.on_store(0, tag(0, 2), PhysAddr::new(0), Word::new(9), 3);
        spec.on_crash_inflight(0, tag(0, 2), 4);
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        pm.write_word(PhysAddr::new(0), Word::new(3));
        assert!(spec.verify(&pm).is_consistent());
        // The leaked partial update is flagged with the rollback value as
        // the only legal one.
        let mut leaked = PmDevice::new(PmDeviceConfig::default());
        leaked.write_word(PhysAddr::new(0), Word::new(9));
        let report = spec.verify(&leaked);
        let v = report.first_offender().expect("violation");
        assert_eq!(v.legal, vec![Word::new(3)]);
        assert_eq!(v.kind, "committed write lost or corrupted");
    }

    #[test]
    fn ambiguous_group_accepts_both_but_not_torn() {
        let mut spec = SpecMachine::new();
        spec.on_store(0, tag(0, 1), PhysAddr::new(0), Word::new(9), 1);
        spec.on_store(0, tag(0, 1), PhysAddr::new(8), Word::new(10), 2);
        spec.on_ambiguous(0, tag(0, 1), 3);

        let old = PmDevice::new(PmDeviceConfig::default());
        assert!(spec.verify(&old).is_consistent(), "fully rolled back");

        let mut new = PmDevice::new(PmDeviceConfig::default());
        new.write_word(PhysAddr::new(0), Word::new(9));
        new.write_word(PhysAddr::new(8), Word::new(10));
        assert!(spec.verify(&new).is_consistent(), "fully applied");

        let mut torn = PmDevice::new(PmDeviceConfig::default());
        torn.write_word(PhysAddr::new(0), Word::new(9));
        let report = spec.verify(&torn);
        assert!(!report.is_consistent());
        let v = report.first_offender().expect("violation");
        assert_eq!(v.addr, PhysAddr::new(8), "the word left behind");
        assert_eq!(v.legal, vec![Word::ZERO, Word::new(10)]);
        assert!(v.kind.contains("torn commit"));
    }

    #[test]
    fn violations_are_sorted_and_first_offender_is_lowest_address() {
        let mut spec = SpecMachine::new();
        for (i, addr) in [64u64, 0, 128].iter().enumerate() {
            let t = tag(0, (i + 1) as u16);
            spec.on_store(0, t, PhysAddr::new(*addr), Word::new(5), i as u64);
            spec.on_commit(0, t, i as u64);
        }
        let pm = PmDevice::new(PmDeviceConfig::default());
        let report = spec.verify(&pm);
        assert_eq!(report.violations.len(), 3);
        let addrs: Vec<u64> = report.violations.iter().map(|v| v.addr.as_u64()).collect();
        assert_eq!(addrs, vec![0, 64, 128]);
        assert_eq!(report.first_offender().unwrap().addr, PhysAddr::new(0));
    }

    #[test]
    fn history_is_bounded_and_counts_drops() {
        let mut spec = SpecMachine::new();
        for i in 0..20u64 {
            let t = tag(0, (i + 1) as u16);
            spec.on_store(0, t, PhysAddr::new(0), Word::new(i), 2 * i);
            spec.on_commit(0, t, 2 * i + 1);
        }
        let pm = PmDevice::new(PmDeviceConfig::default());
        let report = spec.verify(&pm);
        let v = report.first_offender().expect("violation");
        assert_eq!(v.history.len(), HISTORY_CAP);
        assert_eq!(v.dropped_history, 40 - HISTORY_CAP as u64);
        assert_eq!(v.event, 39, "last transition is the final commit");
        assert_eq!(v.legal, vec![Word::new(19)], "last committed value wins");
    }

    #[test]
    fn new_transaction_on_same_core_resets_pending() {
        let mut spec = SpecMachine::new();
        spec.on_store(0, tag(0, 1), PhysAddr::new(0), Word::new(1), 1);
        spec.on_commit(0, tag(0, 1), 2);
        // Second tx on the same core writes a different word; its commit
        // must not re-commit word 0.
        spec.on_store(0, tag(0, 2), PhysAddr::new(8), Word::new(2), 3);
        spec.on_commit(0, tag(0, 2), 4);
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        pm.write_word(PhysAddr::new(0), Word::new(1));
        pm.write_word(PhysAddr::new(8), Word::new(2));
        let report = spec.verify(&pm);
        assert!(report.is_consistent());
        assert_eq!(report.words_checked, 2);
    }
}
