//! The pluggable hardware-logging-scheme interface.
//!
//! Silo (`silo-core`) and the four baselines (`silo-baselines`) implement
//! [`LoggingScheme`]; the [`Engine`](crate::Engine) drives whichever it is
//! handed. The hook set mirrors the hardware events of the paper: a
//! transaction boundary reaching the log generator, a store retiring in
//! L1D, a dirty cacheline leaving the LLC toward the memory controller, a
//! commit, a power failure, and post-crash recovery.

use std::fmt;
use std::ops::Add;

use silo_types::{CoreId, Cycles, LineAddr, PhysAddr, TxTag, Word};

use crate::Machine;

/// What the engine should do with a dirty line evicted from the LLC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictAction {
    /// Write the line's architectural image to PM (the normal path; Silo
    /// additionally set flush-bits before returning this).
    WriteBack,
    /// The scheme absorbed the line into its own persistent structure
    /// (LAD's MC buffer); the engine must not write it to PM.
    Absorb,
}

/// What recovery did, for reporting and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Log-region records scanned during recovery.
    pub scanned_records: u64,
    /// Words replayed from redo information (committed transactions).
    pub replayed_words: u64,
    /// Words revoked from undo information (uncommitted transactions).
    pub revoked_words: u64,
    /// Log entries discarded as stale/overflowed duplicates.
    pub discarded_logs: u64,
    /// Committed transactions identified in the log region.
    pub committed_txs: u64,
}

/// Counters every scheme reports; the source of Fig 13 and of the
/// log-traffic breakdowns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchemeStats {
    /// Log entries generated before any reduction (Fig 13 "total").
    pub log_entries_generated: u64,
    /// Entries dropped by log ignorance (`old == new`, §III-C).
    pub log_entries_ignored: u64,
    /// Entries merged into an existing same-address entry (§III-C).
    pub log_entries_merged: u64,
    /// Entries present in on-chip buffers at commit (Fig 13 "remaining"),
    /// accumulated across transactions.
    pub log_entries_remaining: u64,
    /// Log entries written to the PM log region (overflow or baseline
    /// logging).
    pub log_entries_written_to_pm: u64,
    /// Bytes of log data written to the PM log region.
    pub log_bytes_written_to_pm: u64,
    /// Log-buffer overflow events (§III-F).
    pub overflow_events: u64,
    /// Entries whose flush-bit was set by a cacheline eviction (§III-D).
    pub flush_bits_set: u64,
    /// In-place-update words flushed after commit (Silo's log-as-data path).
    pub inplace_update_words: u64,
    /// Transactions processed.
    pub transactions: u64,
}

impl SchemeStats {
    /// Average log entries generated per transaction (Fig 13 x-axis data).
    pub fn avg_generated_per_tx(&self) -> f64 {
        if self.transactions == 0 {
            0.0
        } else {
            self.log_entries_generated as f64 / self.transactions as f64
        }
    }

    /// Average entries remaining on chip per transaction (Fig 13).
    pub fn avg_remaining_per_tx(&self) -> f64 {
        if self.transactions == 0 {
            0.0
        } else {
            self.log_entries_remaining as f64 / self.transactions as f64
        }
    }

    /// Fraction of generated entries removed by ignorance + merging.
    pub fn reduction_ratio(&self) -> f64 {
        if self.log_entries_generated == 0 {
            0.0
        } else {
            (self.log_entries_ignored + self.log_entries_merged) as f64
                / self.log_entries_generated as f64
        }
    }
}

impl Add for SchemeStats {
    type Output = SchemeStats;

    fn add(self, r: SchemeStats) -> SchemeStats {
        SchemeStats {
            log_entries_generated: self.log_entries_generated + r.log_entries_generated,
            log_entries_ignored: self.log_entries_ignored + r.log_entries_ignored,
            log_entries_merged: self.log_entries_merged + r.log_entries_merged,
            log_entries_remaining: self.log_entries_remaining + r.log_entries_remaining,
            log_entries_written_to_pm: self.log_entries_written_to_pm + r.log_entries_written_to_pm,
            log_bytes_written_to_pm: self.log_bytes_written_to_pm + r.log_bytes_written_to_pm,
            overflow_events: self.overflow_events + r.overflow_events,
            flush_bits_set: self.flush_bits_set + r.flush_bits_set,
            inplace_update_words: self.inplace_update_words + r.inplace_update_words,
            transactions: self.transactions + r.transactions,
        }
    }
}

impl std::ops::Sub for SchemeStats {
    type Output = SchemeStats;

    /// Saturating per-field difference: delta pairs are only approximately
    /// nested (workload streams need not be prefix-extensive), so each
    /// counter saturates at zero rather than panicking on underflow.
    fn sub(self, r: SchemeStats) -> SchemeStats {
        SchemeStats {
            log_entries_generated: self
                .log_entries_generated
                .saturating_sub(r.log_entries_generated),
            log_entries_ignored: self
                .log_entries_ignored
                .saturating_sub(r.log_entries_ignored),
            log_entries_merged: self.log_entries_merged.saturating_sub(r.log_entries_merged),
            log_entries_remaining: self
                .log_entries_remaining
                .saturating_sub(r.log_entries_remaining),
            log_entries_written_to_pm: self
                .log_entries_written_to_pm
                .saturating_sub(r.log_entries_written_to_pm),
            log_bytes_written_to_pm: self
                .log_bytes_written_to_pm
                .saturating_sub(r.log_bytes_written_to_pm),
            overflow_events: self.overflow_events.saturating_sub(r.overflow_events),
            flush_bits_set: self.flush_bits_set.saturating_sub(r.flush_bits_set),
            inplace_update_words: self
                .inplace_update_words
                .saturating_sub(r.inplace_update_words),
            transactions: self.transactions.saturating_sub(r.transactions),
        }
    }
}

impl fmt::Display for SchemeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} txs: {} logs generated ({} ignored, {} merged, {} remaining), \
             {} written to PM ({} B), {} overflows, {} flush-bits, {} IPU words",
            self.transactions,
            self.log_entries_generated,
            self.log_entries_ignored,
            self.log_entries_merged,
            self.log_entries_remaining,
            self.log_entries_written_to_pm,
            self.log_bytes_written_to_pm,
            self.overflow_events,
            self.flush_bits_set,
            self.inplace_update_words,
        )
    }
}

/// Opaque captured private state of one logging scheme, for shared-prefix
/// resimulation. `Machine` holds the scheme as `dyn LoggingScheme`, so the
/// snapshot must be object-safe: each scheme boxes its own concrete clone
/// behind this trait and downcasts on restore.
pub trait SchemeState: std::any::Any + Send + Sync {
    /// The boxed state as `Any`, for the scheme's downcast on restore.
    fn as_any(&self) -> &dyn std::any::Any;
}

impl<T: std::any::Any + Send + Sync> SchemeState for T {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Implements [`LoggingScheme::snapshot_state`] /
/// [`LoggingScheme::restore_state`] for a `Clone` scheme by boxing a full
/// clone of `Self`. Paste inside the scheme's `impl LoggingScheme` block.
#[macro_export]
macro_rules! impl_scheme_snapshot {
    () => {
        fn snapshot_state(&self) -> Option<Box<dyn $crate::SchemeState>> {
            Some(Box::new(self.clone()))
        }

        fn restore_state(&mut self, state: &dyn $crate::SchemeState) {
            let state = state
                .as_any()
                .downcast_ref::<Self>()
                .unwrap_or_else(|| panic!("{} restored from a foreign scheme state", self.name()));
            self.clone_from(state);
        }
    };
}

/// A hardware logging scheme plugged into the engine.
///
/// Timing contract: every hook receives the core-local clock `now` and
/// returns the clock after any stall the scheme puts on the critical path
/// (always `>= now`). Background work (log shipping, lazy data flushes)
/// should be charged to the memory controller, not to the returned clock.
///
/// Persistence contract: state a scheme keeps in battery-backed / ADR
/// structures survives [`LoggingScheme::on_crash`]; everything else must be
/// treated as lost. `on_crash` performs the battery-powered flush (§III-G);
/// [`LoggingScheme::recover`] then rebuilds a consistent PM data region.
pub trait LoggingScheme {
    /// Short scheme name ("Silo", "Base", ...), used in reports.
    fn name(&self) -> &'static str;

    /// Whether this scheme's PM writes use the on-PM coalescing buffer
    /// (§III-E — part of the Silo design; the baselines return `false`).
    fn coalesces_pm_writes(&self) -> bool {
        false
    }

    /// `Tx_begin` reached the log generator.
    fn on_tx_begin(&mut self, m: &mut Machine, core: CoreId, tag: TxTag, now: Cycles) -> Cycles;

    /// A transactional store retired in L1D with old value `old` and new
    /// value `new`. Returns the clock after any store-side stall.
    fn on_store(
        &mut self,
        m: &mut Machine,
        core: CoreId,
        addr: PhysAddr,
        old: Word,
        new: Word,
        now: Cycles,
    ) -> Cycles;

    /// A dirty cacheline is leaving the LLC toward the memory controller.
    fn on_evict(
        &mut self,
        m: &mut Machine,
        core: CoreId,
        line: LineAddr,
        now: Cycles,
    ) -> (EvictAction, Cycles);

    /// `Tx_end`: the transaction commits. Returns the clock after the
    /// commit-visible stall (the ordering constraints of Fig 3 live here).
    fn on_tx_end(&mut self, m: &mut Machine, core: CoreId, tag: TxTag, now: Cycles) -> Cycles;

    /// Periodic hook driven by the engine's global clock (FWB's force
    /// write-back and Silo's lazy in-place-update drain use this).
    /// Default: nothing.
    fn on_tick(&mut self, _m: &mut Machine, _now: Cycles) {}

    /// Called once when a run finishes *without* a crash, so schemes with
    /// lazy background work (Silo's post-commit data-region updates) can
    /// complete it before statistics are read. Default: nothing.
    fn on_run_end(&mut self, _m: &mut Machine, _now: Cycles) {}

    /// Power failure: flush battery-backed state to PM (timing-free — the
    /// battery is sized for exactly this, Table IV).
    fn on_crash(&mut self, m: &mut Machine);

    /// Post-crash recovery: rebuild a consistent data region from the PM
    /// log region and any surviving persistent structures.
    fn recover(&mut self, m: &mut Machine) -> RecoveryReport;

    /// Counter snapshot.
    fn stats(&self) -> SchemeStats;

    /// Captures the scheme's complete private state for checkpointing, or
    /// `None` if the scheme does not support it (the engine then records
    /// no checkpoints and every crash point resimulates from t=0). All
    /// shipped schemes implement this via [`impl_scheme_snapshot!`].
    fn snapshot_state(&self) -> Option<Box<dyn SchemeState>> {
        None
    }

    /// Restores private state captured by [`LoggingScheme::snapshot_state`]
    /// on the same scheme type.
    ///
    /// # Panics
    ///
    /// The default panics: a scheme that returns `None` from
    /// `snapshot_state` can never be handed a state to restore, so
    /// reaching it is an engine bug.
    fn restore_state(&mut self, _state: &dyn SchemeState) {
        panic!(
            "scheme {} advertises no snapshot support but was asked to restore one",
            self.name()
        );
    }
}

/// A no-op scheme: no logging, no ordering, no recovery. Useful as the
/// "raw machine" reference in tests and as an upper bound on throughput.
///
/// It provides **no** atomic durability — its `recover` does nothing — so
/// it only appears in infrastructure tests, never in the paper figures.
#[derive(Debug, Default, Clone)]
pub struct NullScheme {
    stats: SchemeStats,
}

impl LoggingScheme for NullScheme {
    fn name(&self) -> &'static str {
        "Null"
    }

    fn on_tx_begin(&mut self, _m: &mut Machine, _core: CoreId, _tag: TxTag, now: Cycles) -> Cycles {
        now
    }

    fn on_store(
        &mut self,
        _m: &mut Machine,
        _core: CoreId,
        _addr: PhysAddr,
        _old: Word,
        _new: Word,
        now: Cycles,
    ) -> Cycles {
        now
    }

    fn on_evict(
        &mut self,
        _m: &mut Machine,
        _core: CoreId,
        _line: LineAddr,
        now: Cycles,
    ) -> (EvictAction, Cycles) {
        (EvictAction::WriteBack, now)
    }

    fn on_tx_end(&mut self, _m: &mut Machine, _core: CoreId, _tag: TxTag, now: Cycles) -> Cycles {
        self.stats.transactions += 1;
        now
    }

    fn on_crash(&mut self, _m: &mut Machine) {}

    fn recover(&mut self, _m: &mut Machine) -> RecoveryReport {
        RecoveryReport::default()
    }

    fn stats(&self) -> SchemeStats {
        self.stats
    }

    crate::impl_scheme_snapshot!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_stats_averages() {
        let s = SchemeStats {
            log_entries_generated: 100,
            log_entries_ignored: 30,
            log_entries_merged: 20,
            log_entries_remaining: 50,
            transactions: 10,
            ..SchemeStats::default()
        };
        assert!((s.avg_generated_per_tx() - 10.0).abs() < 1e-9);
        assert!((s.avg_remaining_per_tx() - 5.0).abs() < 1e-9);
        assert!((s.reduction_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_avoid_division_by_zero() {
        let s = SchemeStats::default();
        assert_eq!(s.avg_generated_per_tx(), 0.0);
        assert_eq!(s.avg_remaining_per_tx(), 0.0);
        assert_eq!(s.reduction_ratio(), 0.0);
    }

    #[test]
    fn stats_add_fieldwise() {
        let a = SchemeStats {
            log_entries_generated: 3,
            transactions: 1,
            ..SchemeStats::default()
        };
        let b = SchemeStats {
            log_entries_generated: 4,
            overflow_events: 2,
            transactions: 2,
            ..SchemeStats::default()
        };
        let c = a + b;
        assert_eq!(c.log_entries_generated, 7);
        assert_eq!(c.overflow_events, 2);
        assert_eq!(c.transactions, 3);
    }

    #[test]
    fn null_scheme_is_transparent() {
        let mut m = Machine::new(&crate::SimConfig::table_ii(1));
        let mut s = NullScheme::default();
        let t0 = Cycles::new(10);
        assert_eq!(
            s.on_tx_begin(&mut m, CoreId::new(0), TxTag::default(), t0),
            t0
        );
        assert_eq!(
            s.on_store(
                &mut m,
                CoreId::new(0),
                PhysAddr::new(0),
                Word::ZERO,
                Word::new(1),
                t0
            ),
            t0
        );
        let (act, t) = s.on_evict(&mut m, CoreId::new(0), LineAddr::default(), t0);
        assert_eq!(act, EvictAction::WriteBack);
        assert_eq!(t, t0);
        assert_eq!(
            s.on_tx_end(&mut m, CoreId::new(0), TxTag::default(), t0),
            t0
        );
        assert_eq!(s.stats().transactions, 1);
        assert!(!s.coalesces_pm_writes());
        assert_eq!(s.name(), "Null");
    }

    #[test]
    fn display_is_nonempty() {
        assert!(format!("{}", SchemeStats::default()).contains("txs"));
    }
}
