//! JSON views of simulation results (the experiment-report surface).
//!
//! The benchmark framework persists every run's raw statistics to
//! `target/reports/<experiment>.json` so performance trends can be tracked
//! across commits. Everything here builds on the dependency-free
//! [`JsonValue`] from `silo-types` — the crates-io registry is unreachable
//! in this build environment, so there is no serde.

use silo_cache::HierarchyStats;
use silo_memctrl::MemCtrlStats;
use silo_pm::PmStats;
use silo_probe::CycleBreakdown;
use silo_types::{Cycles, JsonValue};

use crate::stats::{CoreStats, LatencyStats};
use crate::{SchemeStats, SimConfig, SimStats};

impl LatencyStats {
    /// The sojourn summary as a JSON object (experiment reports).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("samples", self.samples)
            .field("total_cycles", self.total_cycles)
            .field("p50", self.p50)
            .field("p99", self.p99)
            .field("p999", self.p999)
            .field("max", self.max)
            .build()
    }

    /// Rebuilds the summary from its [`LatencyStats::to_json`] form.
    /// `None` if any field is missing or not an exact integer.
    pub fn from_json(v: &JsonValue) -> Option<LatencyStats> {
        let u = |key: &str| v.get(key).and_then(JsonValue::as_u64);
        Some(LatencyStats {
            samples: u("samples")?,
            total_cycles: u("total_cycles")?,
            p50: u("p50")?,
            p99: u("p99")?,
            p999: u("p999")?,
            max: u("max")?,
        })
    }
}

impl SchemeStats {
    /// The counters as a JSON object (experiment reports).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("log_entries_generated", self.log_entries_generated)
            .field("log_entries_ignored", self.log_entries_ignored)
            .field("log_entries_merged", self.log_entries_merged)
            .field("log_entries_remaining", self.log_entries_remaining)
            .field("log_entries_written_to_pm", self.log_entries_written_to_pm)
            .field("log_bytes_written_to_pm", self.log_bytes_written_to_pm)
            .field("overflow_events", self.overflow_events)
            .field("flush_bits_set", self.flush_bits_set)
            .field("inplace_update_words", self.inplace_update_words)
            .field("transactions", self.transactions)
            .build()
    }

    /// Rebuilds the counters from their [`SchemeStats::to_json`] form.
    /// `None` if any counter is missing or not an exact integer (the
    /// result store treats that as a corrupt entry and recomputes).
    pub fn from_json(v: &JsonValue) -> Option<SchemeStats> {
        let u = |key: &str| v.get(key).and_then(JsonValue::as_u64);
        Some(SchemeStats {
            log_entries_generated: u("log_entries_generated")?,
            log_entries_ignored: u("log_entries_ignored")?,
            log_entries_merged: u("log_entries_merged")?,
            log_entries_remaining: u("log_entries_remaining")?,
            log_entries_written_to_pm: u("log_entries_written_to_pm")?,
            log_bytes_written_to_pm: u("log_bytes_written_to_pm")?,
            overflow_events: u("overflow_events")?,
            flush_bits_set: u("flush_bits_set")?,
            inplace_update_words: u("inplace_update_words")?,
            transactions: u("transactions")?,
        })
    }
}

impl SimStats {
    /// The full run snapshot as a JSON object: headline metrics, then the
    /// raw counters of every component.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object()
            .field("scheme", self.scheme)
            .field("cores", self.cores)
            .field("sim_cycles", self.sim_cycles.as_u64())
            .field("txs_committed", self.txs_committed)
            .field("throughput", self.throughput())
            .field("media_writes", self.media_writes())
            .field(
                "per_core",
                JsonValue::Arr(
                    self.per_core
                        .iter()
                        .map(|c| {
                            JsonValue::object()
                                .field("cycles", c.cycles.as_u64())
                                .field("txs_committed", c.txs_committed)
                                .build()
                        })
                        .collect(),
                ),
            )
            .field("pm", self.pm.to_json())
            .field("mc", self.mc.to_json())
            .field("cache", self.cache.to_json())
            .field("scheme_stats", self.scheme_stats.to_json());
        // Appended only when accounting ran: probe-off output stays
        // byte-identical to pre-observability reports.
        if let Some(b) = &self.breakdown {
            obj = obj.field("breakdown", b.to_json());
        }
        // Same discipline for the open-system latency recorder: absent on
        // closed-loop runs, so their reports never change shape.
        if let Some(l) = &self.latency {
            obj = obj.field("latency", l.to_json());
        }
        obj.build()
    }

    /// Rebuilds a snapshot from its [`SimStats::to_json`] form.
    ///
    /// `scheme` must be the caller-interned static name matching the
    /// JSON's `scheme` field — the struct stores a `&'static str`, so the
    /// caller resolves the string against its known-scheme table first.
    /// The derived `throughput`/`media_writes` fields are ignored (they
    /// are recomputed from the counters on re-serialization). `None` if
    /// the scheme mismatches or any counter is missing/non-integer; the
    /// result store treats that as a corrupt entry and recomputes.
    pub fn from_json(v: &JsonValue, scheme: &'static str) -> Option<SimStats> {
        if v.get("scheme").and_then(JsonValue::as_str) != Some(scheme) {
            return None;
        }
        let u = |key: &str| v.get(key).and_then(JsonValue::as_u64);
        let mut per_core = Vec::new();
        for c in v.get("per_core")?.as_array()? {
            per_core.push(CoreStats {
                cycles: Cycles::new(c.get("cycles")?.as_u64()?),
                txs_committed: c.get("txs_committed")?.as_u64()?,
            });
        }
        let breakdown = match v.get("breakdown") {
            Some(b) => Some(CycleBreakdown::from_json(b)?),
            None => None,
        };
        let latency = match v.get("latency") {
            Some(l) => Some(LatencyStats::from_json(l)?),
            None => None,
        };
        Some(SimStats {
            scheme,
            cores: usize::try_from(u("cores")?).ok()?,
            per_core,
            sim_cycles: Cycles::new(u("sim_cycles")?),
            txs_committed: u("txs_committed")?,
            pm: PmStats::from_json(v.get("pm")?)?,
            mc: MemCtrlStats::from_json(v.get("mc")?)?,
            cache: HierarchyStats::from_json(v.get("cache")?)?,
            scheme_stats: SchemeStats::from_json(v.get("scheme_stats")?)?,
            breakdown,
            latency,
        })
    }
}

impl SimConfig {
    /// A compact one-line fingerprint of every simulation parameter, so a
    /// report records exactly which machine produced it and two reports
    /// are comparable iff their fingerprints match.
    pub fn fingerprint(&self) -> String {
        format!(
            "cores={} l1={}B/{}w/{}c l2={}B/{}w/{}c l3={}B/{}w/{}c \
             wpq={} banks={} rd={}c wr={}c onpm={}l logbuf={}e/{}c \
             ack={} fwb={} lad={} issue={} mcs={} logbase={:#x} logarea={:#x}",
            self.cores,
            self.hierarchy.l1.size_bytes,
            self.hierarchy.l1.ways,
            self.hierarchy.l1_latency.as_u64(),
            self.hierarchy.l2.size_bytes,
            self.hierarchy.l2.ways,
            self.hierarchy.l2_latency.as_u64(),
            self.hierarchy.l3.size_bytes,
            self.hierarchy.l3.ways,
            self.hierarchy.l3_latency.as_u64(),
            self.memctrl.wpq_entries,
            self.memctrl.banks,
            self.memctrl.read_cycles,
            self.memctrl.media_write_cycles,
            self.onpm_buffer_lines,
            self.log_buffer_entries,
            self.log_buffer_latency.as_u64(),
            self.commit_ack_cycles,
            self.fwb_interval_cycles,
            self.lad_mc_buffer_lines,
            self.op_issue_cycles,
            self.num_mcs,
            self.log_region_start,
            self.thread_log_area_bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, Transaction};
    use silo_types::{PhysAddr, Word};

    fn small_run() -> SimStats {
        let cfg = SimConfig::table_ii(2);
        let streams: Vec<Vec<Transaction>> = (0..2)
            .map(|c| {
                vec![Transaction::builder()
                    .write(PhysAddr::new(c * 4096), Word::new(c + 1))
                    .build()]
            })
            .collect();
        let mut scheme = crate::schemes::NullScheme::default();
        Engine::new(&cfg, &mut scheme).run(streams, None).stats
    }

    #[test]
    fn sim_stats_json_is_parseable_and_complete() {
        let stats = small_run();
        let v = JsonValue::parse(&stats.to_json().to_string()).expect("valid JSON");
        assert_eq!(v.get("cores").and_then(JsonValue::as_f64), Some(2.0));
        assert_eq!(
            v.get("txs_committed").and_then(JsonValue::as_f64),
            Some(2.0)
        );
        for key in ["pm", "mc", "cache", "scheme_stats"] {
            assert!(v.get(key).is_some(), "missing {key}");
        }
        assert_eq!(
            v.get("per_core")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(2)
        );
        assert_eq!(
            v.get("media_writes").and_then(JsonValue::as_f64),
            Some(stats.media_writes() as f64)
        );
    }

    #[test]
    fn sim_stats_round_trips_through_json() {
        let stats = small_run();
        let text = stats.to_json().to_string();
        let v = JsonValue::parse(&text).expect("valid JSON");
        let back = SimStats::from_json(&v, stats.scheme).expect("round trip");
        // Re-serializing the rebuilt snapshot (including the derived
        // throughput/media_writes fields) reproduces the original bytes.
        assert_eq!(back.to_json().to_string(), text);
        // A caller-supplied scheme that mismatches the JSON is rejected.
        assert!(SimStats::from_json(&v, "Silo").is_none());
        // Dropping a raw counter poisons the whole parse.
        let truncated = text.replace("\"txs_committed\"", "\"txs_renamed\"");
        let v = JsonValue::parse(&truncated).expect("valid JSON");
        assert!(SimStats::from_json(&v, stats.scheme).is_none());
    }

    #[test]
    fn latency_round_trips_and_is_absent_when_none() {
        let mut stats = small_run();
        assert!(!stats.to_json().to_string().contains("\"latency\""));
        stats.latency = Some(LatencyStats::from_sorted(&[10, 20, 30, 1000]));
        let text = stats.to_json().to_string();
        assert!(text.contains("\"latency\""));
        let v = JsonValue::parse(&text).expect("valid JSON");
        let back = SimStats::from_json(&v, stats.scheme).expect("round trip");
        assert_eq!(back.latency, stats.latency);
        assert_eq!(back.to_json().to_string(), text);
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let a = SimConfig::table_ii(8);
        let mut b = SimConfig::table_ii(8);
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.num_mcs = 4;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let c = SimConfig::table_ii(4);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
