//! The atomic-durability oracle.
//!
//! While the engine executes, the oracle records every transaction's write
//! set and commit status. After a crash + recovery, [`TxOracle::verify`]
//! checks the PM image for the paper's correctness property (§II-A):
//! *all* writes of committed transactions present, *no* writes of
//! uncommitted transactions surviving.

use silo_pm::PmDevice;
use silo_types::{FxHashMap, FxHashSet, PhysAddr, TxTag, Word, BUF_LINE_BYTES};

/// Sequential word peeks over a sorted address stream, fetched one buffer
/// line at a time: crash verification scans tens of thousands of footprint
/// words per crash point, and one media-page lookup per *line* beats one
/// per word. Logical values are identical to [`PmDevice::peek_word`].
struct LinePeeker {
    line: [u8; BUF_LINE_BYTES],
    base: u64,
}

impl LinePeeker {
    fn new() -> Self {
        LinePeeker {
            line: [0u8; BUF_LINE_BYTES],
            base: u64::MAX,
        }
    }

    fn word(&mut self, pm: &PmDevice, addr: PhysAddr) -> Word {
        let base = addr.as_u64() / BUF_LINE_BYTES as u64 * BUF_LINE_BYTES as u64;
        let off = (addr.as_u64() - base) as usize;
        if off + 8 > BUF_LINE_BYTES {
            return pm.peek_word(addr); // straddles two lines
        }
        if base != self.base {
            pm.peek_into(PhysAddr::new(base), &mut self.line);
            self.base = base;
        }
        Word::from_le_bytes(
            self.line[off..off + 8]
                .try_into()
                .expect("word within line"),
        )
    }
}

/// One transaction's observed execution, as the oracle saw it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxRecord {
    /// The transaction's identity.
    pub tag: TxTag,
    /// Final value per distinct written word (in execution order of the
    /// *last* write to each word).
    pub writes: Vec<(PhysAddr, Word)>,
    /// Whether `Tx_end` was reached before the crash (committed).
    pub committed: bool,
}

/// One consistency violation found in the recovered PM image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The word address checked.
    pub addr: PhysAddr,
    /// The value atomic durability requires.
    pub expected: Word,
    /// The value actually found in PM.
    pub actual: Word,
    /// Human-readable cause ("committed write lost", "partial update
    /// survived").
    pub kind: &'static str,
}

/// The verification result.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConsistencyReport {
    /// Distinct word addresses checked.
    pub words_checked: usize,
    /// Violations found (empty = atomic durability held).
    pub violations: Vec<Violation>,
}

impl ConsistencyReport {
    /// Whether the recovered image satisfied atomic durability.
    pub fn is_consistent(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Tracks per-word expected values across committed transactions and the
/// addresses touched by uncommitted ones.
///
/// The oracle relies on the paper's isolation assumption (§III-A: conflict
/// isolation is provided by software locking), which our workloads satisfy
/// by partitioning addresses across threads; [`TxOracle::observe`] asserts
/// it: a word written by an uncommitted (in-flight) transaction of one core
/// must not be concurrently written by another.
///
/// # Examples
///
/// ```
/// use silo_sim::{TxOracle, TxRecord};
/// use silo_types::{PhysAddr, ThreadId, TxId, TxTag, Word};
///
/// let mut oracle = TxOracle::default();
/// oracle.observe(TxRecord {
///     tag: TxTag::new(ThreadId::new(0), TxId::new(1)),
///     writes: vec![(PhysAddr::new(0), Word::new(7))],
///     committed: true,
/// });
/// assert_eq!(oracle.expected_value(PhysAddr::new(0)), Word::new(7));
/// ```
#[derive(Clone, Debug, Default)]
pub struct TxOracle {
    /// Expected post-recovery value per word: the last committed write.
    committed_state: FxHashMap<u64, Word>,
    /// Words touched by uncommitted transactions, with the value they must
    /// roll back to.
    uncommitted_touched: FxHashMap<u64, Word>,
    /// Write sets of transactions whose commit raced the power failure:
    /// `(word key, rollback value, new value)` per write. Either outcome
    /// is legal, but it must be all-or-nothing per transaction.
    ambiguous_groups: Vec<Vec<(u64, Word, Word)>>,
    /// Totals for reporting.
    committed_txs: u64,
    uncommitted_txs: u64,
    ambiguous_txs: u64,
}

impl TxOracle {
    /// Records a finished (or crash-interrupted) transaction.
    pub fn observe(&mut self, record: TxRecord) {
        if record.committed {
            self.committed_txs += 1;
            for (addr, value) in record.writes {
                let key = addr.word_aligned().as_u64();
                self.committed_state.insert(key, value);
            }
        } else {
            self.uncommitted_txs += 1;
            for (addr, _) in record.writes {
                let key = addr.word_aligned().as_u64();
                let rollback = self
                    .committed_state
                    .get(&key)
                    .copied()
                    .unwrap_or(Word::ZERO);
                self.uncommitted_touched.insert(key, rollback);
            }
        }
    }

    /// Records a transaction whose `Tx_end` raced the power failure: the
    /// scheme may legally have persisted its commit or not, but the
    /// recovered image must reflect one outcome *atomically*. The record's
    /// writes are checked as a group by [`verify`](Self::verify) and
    /// excluded from the unambiguous-state checks.
    pub fn observe_ambiguous(&mut self, record: TxRecord) {
        self.ambiguous_txs += 1;
        let group = record
            .writes
            .iter()
            .map(|&(addr, new)| {
                let key = addr.word_aligned().as_u64();
                let rollback = self
                    .committed_state
                    .get(&key)
                    .copied()
                    .unwrap_or(Word::ZERO);
                (key, rollback, new)
            })
            .collect();
        self.ambiguous_groups.push(group);
    }

    /// The value atomic durability requires at `addr` after recovery.
    pub fn expected_value(&self, addr: PhysAddr) -> Word {
        let key = addr.word_aligned().as_u64();
        self.committed_state.get(&key).copied().unwrap_or_else(|| {
            self.uncommitted_touched
                .get(&key)
                .copied()
                .unwrap_or(Word::ZERO)
        })
    }

    /// Checks the PM image against the expected state. Words written by an
    /// ambiguous transaction (see [`observe_ambiguous`]
    /// (Self::observe_ambiguous)) are checked per group — all-new or
    /// all-rollback — instead of against a single expected value.
    pub fn verify(&self, pm: &PmDevice) -> ConsistencyReport {
        let ambiguous_keys: FxHashSet<u64> = self
            .ambiguous_groups
            .iter()
            .flatten()
            .map(|&(key, _, _)| key)
            .collect();
        let mut report = ConsistencyReport::default();
        let mut peeker = LinePeeker::new();
        let mut keys: Vec<u64> = self.committed_state.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            if ambiguous_keys.contains(&key) {
                continue; // group-checked below
            }
            let addr = PhysAddr::new(key);
            let expected = self.committed_state[&key];
            let actual = peeker.word(pm, addr);
            report.words_checked += 1;
            if actual != expected {
                report.violations.push(Violation {
                    addr,
                    expected,
                    actual,
                    kind: "committed write lost or corrupted",
                });
            }
        }
        let mut ukeys: Vec<u64> = self.uncommitted_touched.keys().copied().collect();
        ukeys.sort_unstable();
        let mut peeker = LinePeeker::new();
        for key in ukeys {
            if self.committed_state.contains_key(&key) || ambiguous_keys.contains(&key) {
                continue; // already checked against the committed value
            }
            let addr = PhysAddr::new(key);
            let expected = self.uncommitted_touched[&key];
            let actual = peeker.word(pm, addr);
            report.words_checked += 1;
            if actual != expected {
                report.violations.push(Violation {
                    addr,
                    expected,
                    actual,
                    kind: "partial update of uncommitted transaction survived",
                });
            }
        }
        for group in &self.ambiguous_groups {
            let mut all_new = true;
            let mut all_old = true;
            for &(key, rollback, new) in group {
                let actual = pm.peek_word(PhysAddr::new(key));
                report.words_checked += 1;
                if actual != new {
                    all_new = false;
                }
                if actual != rollback {
                    all_old = false;
                }
            }
            if !all_new && !all_old {
                // Torn: flag every word that did not make it to the new
                // value (at least one exists, since `all_new` is false).
                for &(key, _, new) in group {
                    let addr = PhysAddr::new(key);
                    let actual = pm.peek_word(addr);
                    if actual != new {
                        report.violations.push(Violation {
                            addr,
                            expected: new,
                            actual,
                            kind: "ambiguous commit applied partially (torn commit)",
                        });
                    }
                }
            }
        }
        report
    }

    /// `(committed, uncommitted)` transaction counts observed.
    pub fn tx_counts(&self) -> (u64, u64) {
        (self.committed_txs, self.uncommitted_txs)
    }

    /// Transactions whose commit raced the power failure.
    pub fn ambiguous_txs(&self) -> u64 {
        self.ambiguous_txs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_pm::PmDeviceConfig;
    use silo_types::{ThreadId, TxId};

    fn tag(tid: u8, txid: u16) -> TxTag {
        TxTag::new(ThreadId::new(tid), TxId::new(txid))
    }

    fn committed(addr: u64, value: u64) -> TxRecord {
        TxRecord {
            tag: tag(0, 1),
            writes: vec![(PhysAddr::new(addr), Word::new(value))],
            committed: true,
        }
    }

    #[test]
    fn committed_writes_must_be_present() {
        let mut oracle = TxOracle::default();
        oracle.observe(committed(0, 7));
        let pm = PmDevice::new(PmDeviceConfig::default());
        let report = oracle.verify(&pm);
        assert!(!report.is_consistent());
        assert_eq!(
            report.violations[0].kind,
            "committed write lost or corrupted"
        );

        let mut pm2 = PmDevice::new(PmDeviceConfig::default());
        pm2.write_word(PhysAddr::new(0), Word::new(7));
        assert!(oracle.verify(&pm2).is_consistent());
    }

    #[test]
    fn uncommitted_writes_must_roll_back_to_zero() {
        let mut oracle = TxOracle::default();
        oracle.observe(TxRecord {
            tag: tag(0, 1),
            writes: vec![(PhysAddr::new(8), Word::new(5))],
            committed: false,
        });
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        pm.write_word(PhysAddr::new(8), Word::new(5)); // leaked partial update
        let report = oracle.verify(&pm);
        assert!(!report.is_consistent());
        assert!(report.violations[0].kind.contains("partial update"));
    }

    #[test]
    fn uncommitted_rolls_back_to_last_committed_value() {
        let mut oracle = TxOracle::default();
        oracle.observe(committed(0, 3));
        oracle.observe(TxRecord {
            tag: tag(0, 2),
            writes: vec![(PhysAddr::new(0), Word::new(9))],
            committed: false,
        });
        assert_eq!(oracle.expected_value(PhysAddr::new(0)), Word::new(3));
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        pm.write_word(PhysAddr::new(0), Word::new(3));
        assert!(oracle.verify(&pm).is_consistent());
    }

    #[test]
    fn later_committed_tx_wins() {
        let mut oracle = TxOracle::default();
        oracle.observe(committed(0, 1));
        oracle.observe(committed(0, 2));
        assert_eq!(oracle.expected_value(PhysAddr::new(0)), Word::new(2));
    }

    #[test]
    fn counts_and_checked_words() {
        let mut oracle = TxOracle::default();
        oracle.observe(committed(0, 1));
        oracle.observe(TxRecord {
            tag: tag(1, 1),
            writes: vec![(PhysAddr::new(64), Word::new(2))],
            committed: false,
        });
        assert_eq!(oracle.tx_counts(), (1, 1));
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        pm.write_word(PhysAddr::new(0), Word::new(1));
        let report = oracle.verify(&pm);
        assert_eq!(report.words_checked, 2);
        assert!(report.is_consistent());
    }

    #[test]
    fn expected_value_of_untouched_word_is_zero() {
        let oracle = TxOracle::default();
        assert_eq!(oracle.expected_value(PhysAddr::new(12345 * 8)), Word::ZERO);
    }

    fn ambiguous_two_words(oracle: &mut TxOracle) {
        oracle.observe(committed(0, 3));
        oracle.observe_ambiguous(TxRecord {
            tag: tag(0, 2),
            writes: vec![
                (PhysAddr::new(0), Word::new(9)),
                (PhysAddr::new(8), Word::new(10)),
            ],
            committed: false,
        });
    }

    #[test]
    fn ambiguous_commit_accepts_both_outcomes() {
        let mut oracle = TxOracle::default();
        ambiguous_two_words(&mut oracle);
        assert_eq!(oracle.ambiguous_txs(), 1);

        // Fully rolled back: word 0 = last committed (3), word 8 = zero.
        let mut old = PmDevice::new(PmDeviceConfig::default());
        old.write_word(PhysAddr::new(0), Word::new(3));
        assert!(oracle.verify(&old).is_consistent());

        // Fully applied.
        let mut new = PmDevice::new(PmDeviceConfig::default());
        new.write_word(PhysAddr::new(0), Word::new(9));
        new.write_word(PhysAddr::new(8), Word::new(10));
        assert!(oracle.verify(&new).is_consistent());
    }

    #[test]
    fn ambiguous_commit_rejects_torn_mix() {
        let mut oracle = TxOracle::default();
        ambiguous_two_words(&mut oracle);
        // Word 0 applied, word 8 rolled back: torn.
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        pm.write_word(PhysAddr::new(0), Word::new(9));
        let report = oracle.verify(&pm);
        assert!(!report.is_consistent());
        assert!(report.violations[0].kind.contains("torn commit"));
    }

    #[test]
    fn ambiguous_keys_are_excluded_from_plain_checks() {
        let mut oracle = TxOracle::default();
        ambiguous_two_words(&mut oracle);
        // Word 0 holds the ambiguous-new value: the committed-state check
        // (which expects 3) must not fire.
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        pm.write_word(PhysAddr::new(0), Word::new(9));
        pm.write_word(PhysAddr::new(8), Word::new(10));
        let report = oracle.verify(&pm);
        assert!(
            report
                .violations
                .iter()
                .all(|v| !v.kind.contains("committed write")),
            "{:?}",
            report.violations
        );
    }
}
