//! Discrete-event multicore simulator for persistent-memory logging
//! schemes.
//!
//! This crate is the gem5 stand-in of the reproduction: it executes
//! per-core transactional operation streams ([`Transaction`]) over the
//! Table II machine ([`Machine`]: cache hierarchy + memory controller + PM
//! device + architectural shadow memory) under a pluggable hardware
//! logging scheme (the [`LoggingScheme`] trait, implemented by `silo-core`
//! for Silo itself and by `silo-baselines` for Base / FWB / MorLog / LAD).
//!
//! # Execution model
//!
//! Each core owns a local clock and executes its transactions op by op;
//! the [`Engine`] always advances the core with the smallest local time,
//! so cross-core contention on the shared memory controller is simulated
//! deterministically. Stores walk the cache hierarchy (write-allocate,
//! write-back); dirty lines evicted from L3 are routed to the scheme
//! (Silo's flush-bit hook, §III-D) and then to the memory controller.
//! Persistence follows ADR semantics: a write is durable once admitted to
//! the write pending queue.
//!
//! # Crash model
//!
//! [`Engine::run`] optionally injects a power failure at a given cycle:
//! cores halt at the preceding op boundary, volatile state (caches,
//! architectural register/cache view) is discarded, the scheme's
//! battery-backed `on_crash` flush runs, then `recover` rebuilds the data
//! region. A [`TxOracle`] built during execution checks the recovered PM
//! image for **atomic durability**: every committed transaction fully
//! applied, every uncommitted transaction fully absent.
//!
//! # Examples
//!
//! ```
//! use silo_sim::{Engine, SimConfig, Transaction, schemes::NullScheme};
//! use silo_types::{PhysAddr, Word};
//!
//! let config = SimConfig::table_ii(1);
//! let tx = Transaction::builder()
//!     .write(PhysAddr::new(0), Word::new(1))
//!     .write(PhysAddr::new(8), Word::new(2))
//!     .build();
//! let mut scheme = NullScheme::default();
//! let outcome = Engine::new(&config, &mut scheme).run(vec![vec![tx]], None);
//! assert_eq!(outcome.stats.txs_committed, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod machine;
mod ops;
mod oracle;
mod report;
pub mod schemes;
mod stats;

pub use config::SimConfig;
pub use engine::{Engine, RunOutcome};
pub use machine::{Machine, ShadowMem};
pub use ops::{Op, Transaction, TransactionBuilder};
pub use oracle::{ConsistencyReport, TxOracle, TxRecord, Violation};
pub use schemes::{EvictAction, LoggingScheme, RecoveryReport, SchemeStats};
pub use stats::{CoreStats, SimStats};
