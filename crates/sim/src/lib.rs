//! Discrete-event multicore simulator for persistent-memory logging
//! schemes.
//!
//! This crate is the gem5 stand-in of the reproduction: it executes
//! per-core transactional operation streams ([`Transaction`]) over the
//! Table II machine ([`Machine`]: cache hierarchy + memory controller + PM
//! device + architectural shadow memory) under a pluggable hardware
//! logging scheme (the [`LoggingScheme`] trait, implemented by `silo-core`
//! for Silo itself and by `silo-baselines` for Base / FWB / MorLog / LAD).
//!
//! # Execution model
//!
//! Each core owns a local clock and executes its transactions op by op;
//! the [`Engine`] always advances the core with the smallest local time,
//! so cross-core contention on the shared memory controller is simulated
//! deterministically. Stores walk the cache hierarchy (write-allocate,
//! write-back); dirty lines evicted from L3 are routed to the scheme
//! (Silo's flush-bit hook, §III-D) and then to the memory controller.
//! Persistence follows ADR semantics: a write is durable once admitted to
//! the write pending queue.
//!
//! # Crash model
//!
//! [`Engine::run_with_plan`] injects a power failure per a [`CrashPlan`]:
//! either at a sampled cycle (cores halt at the preceding op boundary) or
//! at the N-th **durability event** — store, log-buffer drain, WPQ
//! admission, media line program — which enumerates the crash surface
//! densely instead of sampling it. At the cut, volatile state (caches,
//! architectural shadow) is discarded and the scheme's battery-backed
//! `on_crash` flush runs under the plan's [`FaultModel`]: the residual
//! energy budget bounds how many bytes the ADR drain persists, and an
//! in-flight line program may tear. `recover` then rebuilds the data
//! region — optionally re-crashed after N recovery writes (the
//! double-crash scenario, which recovery must survive idempotently). A
//! [`TxOracle`] built during execution checks the recovered PM image for
//! **atomic durability**: every committed transaction fully applied,
//! every uncommitted transaction fully absent, and a commit that raced
//! the power cut applied all-or-nothing. On crash runs the traffic
//! counters freeze at the instant of power loss and [`RunOutcome::pm`] is
//! snapshotted immediately after the oracle's verdict.
//!
//! # Examples
//!
//! ```
//! use silo_sim::{Engine, SimConfig, Transaction, schemes::NullScheme};
//! use silo_types::{PhysAddr, Word};
//!
//! let config = SimConfig::table_ii(1);
//! let tx = Transaction::builder()
//!     .write(PhysAddr::new(0), Word::new(1))
//!     .write(PhysAddr::new(8), Word::new(2))
//!     .build();
//! let mut scheme = NullScheme::default();
//! let outcome = Engine::new(&config, &mut scheme).run(vec![vec![tx]], None);
//! assert_eq!(outcome.stats.txs_committed, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod machine;
mod ops;
mod oracle;
mod report;
pub mod schemes;
mod spec;
mod stats;
mod trace;

pub use config::SimConfig;
pub use engine::{
    CheckpointPolicy, CheckpointSet, CrashOutcome, CrashPlan, CrashTrigger, Engine,
    EngineCheckpoint, RunOutcome,
};
pub use machine::{Machine, MachineState, ShadowMem};
pub use ops::{Op, Transaction, TransactionBuilder};
pub use oracle::{ConsistencyReport, TxOracle, TxRecord, Violation};
pub use schemes::{EvictAction, LoggingScheme, RecoveryReport, SchemeState, SchemeStats};
pub use spec::{SpecMachine, SpecReport, SpecViolation, WordEvent, WordEventKind};
pub use stats::{CoreStats, LatencyStats, SimStats};
pub use trace::{ArrivalSchedule, TraceProvenance, TraceSet, TxStreams};

// Re-exported so scheme crates and tests can build [`CrashPlan`]s without
// depending on `silo-pm` directly.
pub use silo_pm::{DrainReport, EventCounters, EventKind, FaultModel};

// Re-exported so callers can enable/consume the observability layer (the
// [`Machine::probe`] hub) without depending on `silo-probe` directly.
pub use silo_probe::{
    CycleBreakdown, CycleCategory, Probe, ProbeEvent, ProbeEventKind, ProbeHub, SchemePhase,
    Signature, SignatureRecorder, DEFAULT_TIMELINE_CAPACITY, TIMELINE_SCHEMA_VERSION,
};
