//! The simulated-system configuration (paper Table II plus the design
//! parameters of §III).

use silo_cache::HierarchyConfig;
use silo_memctrl::MemCtrlConfig;
use silo_pm::{PmDeviceConfig, DEFAULT_BUFFER_LINES};
use silo_types::{Cycles, PhysAddr, ThreadId};

/// Full configuration of a simulation run.
///
/// [`SimConfig::table_ii`] reproduces the paper's evaluated system: 8-way
/// 32 KB L1D (4 cycles), 8-way 256 KB L2 (12 cycles), 16-way 8 MB shared L3
/// (28 cycles), FR-FCFS memory controller with a 64-entry ADR write pending
/// queue, PCM at 50 / 150 ns read / write, a 20-entry battery-backed log
/// buffer per core at 8-cycle access latency, and FWB's 3 M-cycle force
/// write-back interval.
///
/// # Examples
///
/// ```
/// use silo_sim::SimConfig;
///
/// let cfg = SimConfig::table_ii(8);
/// assert_eq!(cfg.cores, 8);
/// assert_eq!(cfg.log_buffer_entries, 20);
/// assert_eq!(cfg.overflow_batch_entries(), 14); // floor(256 / 18), §III-F
/// ```
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of cores (one thread per core, as in the evaluation).
    pub cores: usize,
    /// Cache hierarchy geometry and latencies.
    pub hierarchy: HierarchyConfig,
    /// Memory-controller and PM timing.
    pub memctrl: MemCtrlConfig,
    /// On-PM buffer capacity in 256 B lines.
    pub onpm_buffer_lines: usize,
    /// First byte of the PM log region. The data region is below it.
    pub log_region_start: u64,
    /// Bytes of log area reserved per thread (the distributed log scheme of
    /// §III-B gives each thread its own area to avoid contention).
    pub thread_log_area_bytes: u64,
    /// Entries per per-core log buffer (Table I / §VI-D: 20).
    pub log_buffer_entries: usize,
    /// Access latency of the log buffer (Table II: 8 cycles; swept 8–128 in
    /// Fig 15).
    pub log_buffer_latency: Cycles,
    /// On-chip ACK round trip of the Silo commit ("several cycles", §III-D).
    pub commit_ack_cycles: u64,
    /// FWB's periodic cache force-write-back interval (§VI-A: 3,000,000).
    pub fwb_interval_cycles: u64,
    /// Capacity of LAD's persistent MC buffer, in cachelines.
    pub lad_mc_buffer_lines: usize,
    /// Base pipeline cost charged per executed operation.
    pub op_issue_cycles: u64,
    /// Number of memory controllers. Each MC serves the whole memory
    /// (paper §III-D citing ATLAS \[30\]); demand traffic interleaves across
    /// them by cacheline, while a logging scheme with MC affinity (Silo)
    /// routes a transaction's log traffic through its core's home MC.
    pub num_mcs: usize,
}

impl SimConfig {
    /// The paper Table II configuration for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or greater than 255 (thread ids are 8-bit).
    pub fn table_ii(cores: usize) -> Self {
        assert!(cores > 0 && cores <= 255, "cores must be in 1..=255");
        SimConfig {
            cores,
            hierarchy: HierarchyConfig::table_ii(cores),
            memctrl: MemCtrlConfig::table_ii(),
            onpm_buffer_lines: DEFAULT_BUFFER_LINES,
            // Data region: first 8 GiB. Log region: above it.
            log_region_start: 8 << 30,
            thread_log_area_bytes: 64 << 20,
            log_buffer_entries: 20,
            log_buffer_latency: Cycles::new(8),
            commit_ack_cycles: 4,
            fwb_interval_cycles: 3_000_000,
            lad_mc_buffer_lines: 64,
            op_issue_cycles: 1,
            num_mcs: 1,
        }
    }

    /// The PM-device configuration implied by this simulation config.
    pub fn pm_device_config(&self) -> PmDeviceConfig {
        PmDeviceConfig {
            buffer_lines: self.onpm_buffer_lines,
            log_region_start: Some(self.log_region_start),
        }
    }

    /// Base address of `tid`'s private log area (distributed log scheme).
    pub fn thread_log_base(&self, tid: ThreadId) -> PhysAddr {
        PhysAddr::new(self.log_region_start + tid.as_u8() as u64 * self.thread_log_area_bytes)
    }

    /// Exclusive upper bound of `tid`'s log area.
    pub fn thread_log_end(&self, tid: ThreadId) -> PhysAddr {
        self.thread_log_base(tid).add(self.thread_log_area_bytes)
    }

    /// Undo-log entries per overflow batch: `N = floor(S / 18)` where `S`
    /// is the on-PM buffer line size and 18 B is the undo entry size
    /// (§III-F; 14 for S = 256).
    pub fn overflow_batch_entries(&self) -> usize {
        silo_types::BUF_LINE_BYTES / 18
    }
}

impl Default for SimConfig {
    /// The single-core Table II system.
    fn default() -> Self {
        SimConfig::table_ii(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_matches_paper() {
        let c = SimConfig::table_ii(8);
        assert_eq!(c.hierarchy.l1_latency, Cycles::new(4));
        assert_eq!(c.hierarchy.l2_latency, Cycles::new(12));
        assert_eq!(c.hierarchy.l3_latency, Cycles::new(28));
        assert_eq!(c.memctrl.wpq_entries, 64);
        assert_eq!(c.memctrl.read_cycles, 100);
        assert_eq!(c.memctrl.media_write_cycles, 300);
        assert_eq!(c.log_buffer_entries, 20);
        assert_eq!(c.log_buffer_latency, Cycles::new(8));
        assert_eq!(c.fwb_interval_cycles, 3_000_000);
    }

    #[test]
    fn overflow_batch_is_fourteen_for_256b_lines() {
        assert_eq!(SimConfig::table_ii(1).overflow_batch_entries(), 14);
    }

    #[test]
    fn thread_log_areas_are_disjoint() {
        let c = SimConfig::table_ii(8);
        let a0 = c.thread_log_base(ThreadId::new(0));
        let e0 = c.thread_log_end(ThreadId::new(0));
        let a1 = c.thread_log_base(ThreadId::new(1));
        assert_eq!(e0, a1);
        assert!(a0.as_u64() >= c.log_region_start);
    }

    #[test]
    fn pm_config_carries_log_boundary() {
        let c = SimConfig::table_ii(2);
        assert_eq!(c.pm_device_config().log_region_start, Some(8 << 30));
    }

    #[test]
    #[should_panic(expected = "1..=255")]
    fn zero_cores_rejected() {
        let _ = SimConfig::table_ii(0);
    }
}
