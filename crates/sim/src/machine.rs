//! The simulated machine: caches + memory controller + PM + architectural
//! state.

use silo_cache::{CacheHierarchy, CacheHierarchyState};
use silo_memctrl::{Admission, MemCtrl};
use silo_pm::PmDevice;
use silo_probe::ProbeHub;
use silo_types::{Cycles, FxHashMap, LineAddr, PhysAddr, Snapshot, Word, LINE_BYTES, WORD_BYTES};

use crate::SimConfig;

/// The architectural (CPU-visible) memory image.
///
/// With write-back caches, persistent memory lags the program's view of
/// memory; the shadow tracks the program's view at word granularity. Words
/// never written fall through to the PM device's logical contents. At a
/// power failure the shadow is discarded together with the caches — the
/// machine's surviving state is exactly the PM device.
///
/// # Examples
///
/// ```
/// use silo_sim::ShadowMem;
/// use silo_types::{PhysAddr, Word};
/// use silo_pm::{PmDevice, PmDeviceConfig};
///
/// let pm = PmDevice::new(PmDeviceConfig::default());
/// let mut shadow = ShadowMem::default();
/// shadow.store(PhysAddr::new(8), Word::new(5));
/// assert_eq!(shadow.load(PhysAddr::new(8), &pm), Word::new(5));
/// assert_eq!(shadow.load(PhysAddr::new(16), &pm), Word::ZERO); // falls through
/// ```
#[derive(Clone, Debug, Default)]
pub struct ShadowMem {
    words: FxHashMap<u64, Word>,
}

impl ShadowMem {
    /// Records a store (architectural update; instant).
    pub fn store(&mut self, addr: PhysAddr, value: Word) {
        self.words.insert(addr.word_aligned().as_u64(), value);
    }

    /// The architectural value of the word at `addr`.
    pub fn load(&self, addr: PhysAddr, pm: &PmDevice) -> Word {
        let key = addr.word_aligned().as_u64();
        match self.words.get(&key) {
            Some(w) => *w,
            None => pm.peek_word(PhysAddr::new(key)),
        }
    }

    /// The architectural image of a full cacheline (what a dirty eviction
    /// or an explicit line flush writes to PM).
    pub fn line_image(&self, line: LineAddr, pm: &PmDevice) -> [u8; LINE_BYTES] {
        let mut out = [0u8; LINE_BYTES];
        for (i, waddr) in line.words().enumerate() {
            let w = self.load(waddr, pm);
            out[i * WORD_BYTES..(i + 1) * WORD_BYTES].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Discards all volatile architectural state (power failure).
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// Number of words currently tracked.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether no word has been stored.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// The full simulated machine shared by the engine and the logging scheme.
///
/// Logging schemes receive `&mut Machine` in every hook and issue their PM
/// traffic through [`Machine::pm_write_coalesced`] (Silo's path through the
/// on-PM buffer) or [`Machine::pm_write_through`] (the baselines' direct
/// path), both of which charge the memory controller consistently with the
/// media work performed.
#[derive(Debug)]
pub struct Machine {
    /// The simulation configuration.
    pub config: SimConfig,
    /// The PM DIMM.
    pub pm: PmDevice,
    /// The cache hierarchy.
    pub caches: CacheHierarchy,
    /// The memory controllers (paper §III-D: each serves the whole
    /// memory). Demand traffic interleaves by cacheline; schemes with MC
    /// affinity route through [`Machine::home_mc`].
    pub mcs: Vec<MemCtrl>,
    /// The architectural memory image.
    pub shadow: ShadowMem,
    /// Observability hub (cycle accounting + event timeline). Disabled by
    /// default; when off every probe call is a cheap discriminant check.
    pub probe: ProbeHub,
}

impl Machine {
    /// Builds an idle machine from a configuration.
    pub fn new(config: &SimConfig) -> Self {
        assert!(config.num_mcs > 0, "need at least one memory controller");
        Machine {
            pm: PmDevice::new(config.pm_device_config()),
            caches: CacheHierarchy::new(config.hierarchy),
            mcs: (0..config.num_mcs)
                .map(|_| MemCtrl::new(config.memctrl))
                .collect(),
            shadow: ShadowMem::default(),
            probe: ProbeHub::default(),
            config: config.clone(),
        }
    }

    /// The MC demand traffic for `addr` interleaves to (by cacheline).
    pub fn mc_for_addr(&self, addr: PhysAddr) -> usize {
        (addr.line_index() % self.mcs.len() as u64) as usize
    }

    /// The home MC of `core`: the controller whose log controller handles
    /// all of that core's transactions (paper §III-D, "the log generator
    /// sends the logs from the same transaction to the same MC").
    pub fn home_mc(&self, core: silo_types::CoreId) -> usize {
        core.as_usize() % self.mcs.len()
    }

    /// Convenience accessor for the single-MC common case and for
    /// aggregate statistics.
    pub fn mc_stats_total(&self) -> silo_memctrl::MemCtrlStats {
        self.mcs
            .iter()
            .map(|m| m.stats())
            .fold(silo_memctrl::MemCtrlStats::default(), |a, b| a + b)
    }

    /// Issues a persistent write through the on-PM coalescing buffer
    /// (§III-E) via the address-interleaved MC and charges it for any
    /// fresh buffer lines it filled.
    pub fn pm_write_coalesced(&mut self, now: Cycles, addr: PhysAddr, bytes: &[u8]) -> Admission {
        let mc = self.mc_for_addr(addr);
        self.pm_write_coalesced_via(mc, now, addr, bytes)
    }

    /// Coalesced write through an explicit MC (a scheme's home controller).
    pub fn pm_write_coalesced_via(
        &mut self,
        mc: usize,
        now: Cycles,
        addr: PhysAddr,
        bytes: &[u8],
    ) -> Admission {
        self.pm.note_event(silo_pm::EventKind::WpqAdmit);
        let fills_before = self.pm.stats().buffer_fills;
        self.pm.write(addr, bytes);
        let fills = self.pm.stats().buffer_fills - fills_before;
        self.mcs[mc].enqueue_write_probed(now, bytes.len() as u64, fills, &mut self.probe, None)
    }

    /// Issues a persistent write that bypasses the coalescing buffer (the
    /// baseline path) via the address-interleaved MC.
    pub fn pm_write_through(&mut self, now: Cycles, addr: PhysAddr, bytes: &[u8]) -> Admission {
        let mc = self.mc_for_addr(addr);
        self.pm_write_through_via(mc, now, addr, bytes)
    }

    /// Write-through via an explicit MC.
    pub fn pm_write_through_via(
        &mut self,
        mc: usize,
        now: Cycles,
        addr: PhysAddr,
        bytes: &[u8],
    ) -> Admission {
        self.pm.note_event(silo_pm::EventKind::WpqAdmit);
        let programs = self.pm.write_through(addr, bytes);
        self.mcs[mc].enqueue_write_probed(now, bytes.len() as u64, programs, &mut self.probe, None)
    }

    /// Issues a PM read at `now` via the address-interleaved MC; returns
    /// its completion time.
    pub fn pm_read_at(&mut self, now: Cycles, addr: PhysAddr) -> Cycles {
        let mc = self.mc_for_addr(addr);
        self.pm_read_via(mc, now)
    }

    /// Issues a PM read at `now` via an explicit controller — the path for
    /// scheme code with no demand address at hand (log-region scans,
    /// commit-time metadata reads), which must name its core's
    /// [`Machine::home_mc`] instead of silently serializing on MC 0.
    pub fn pm_read_via(&mut self, mc: usize, now: Cycles) -> Cycles {
        self.mcs[mc].read(now)
    }

    /// The architectural bytes of `line` (helper over the shadow).
    pub fn line_image(&self, line: LineAddr) -> [u8; LINE_BYTES] {
        self.shadow.line_image(line, &self.pm)
    }

    /// Writes a cacheline's architectural image to PM via the path selected
    /// by `coalesced`.
    pub fn writeback_line(&mut self, now: Cycles, line: LineAddr, coalesced: bool) -> Admission {
        let image = self.line_image(line);
        if coalesced {
            self.pm_write_coalesced(now, line.base(), &image)
        } else {
            self.pm_write_through(now, line.base(), &image)
        }
    }
}

/// Captured state of a whole [`Machine`] minus its immutable `config`:
/// the PM DIMM (media pages are Arc-COW, so this is near-free), the cache
/// hierarchy (sparse per-level copies), the memory controllers, the shadow
/// memory, and the probe hub (cycle accounting must resume mid-total).
#[derive(Clone, Debug)]
pub struct MachineState {
    pm: PmDevice,
    caches: CacheHierarchyState,
    mcs: Vec<MemCtrl>,
    shadow: ShadowMem,
    probe: ProbeHub,
}

impl Snapshot for Machine {
    type State = MachineState;

    fn snapshot(&self) -> MachineState {
        MachineState {
            pm: self.pm.snapshot(),
            caches: self.caches.snapshot(),
            mcs: self.mcs.iter().map(Snapshot::snapshot).collect(),
            shadow: self.shadow.clone(),
            probe: self.probe.clone(),
        }
    }

    fn restore(&mut self, state: &MachineState) {
        assert_eq!(
            self.mcs.len(),
            state.mcs.len(),
            "machine snapshot restored into a different MC count"
        );
        self.pm.restore(&state.pm);
        self.caches.restore(&state.caches);
        for (mc, s) in self.mcs.iter_mut().zip(&state.mcs) {
            mc.restore(s);
        }
        self.shadow.clone_from(&state.shadow);
        self.probe.clone_from(&state.probe);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(&SimConfig::table_ii(2))
    }

    #[test]
    fn shadow_overrides_pm() {
        let mut m = machine();
        m.pm.write_word(PhysAddr::new(0), Word::new(1));
        assert_eq!(m.shadow.load(PhysAddr::new(0), &m.pm), Word::new(1));
        m.shadow.store(PhysAddr::new(0), Word::new(2));
        assert_eq!(m.shadow.load(PhysAddr::new(0), &m.pm), Word::new(2));
        assert_eq!(m.pm.peek_word(PhysAddr::new(0)), Word::new(1), "PM lags");
    }

    #[test]
    fn line_image_mixes_shadow_and_pm() {
        let mut m = machine();
        m.pm.write_word(PhysAddr::new(64), Word::new(0xAA));
        m.shadow.store(PhysAddr::new(72), Word::new(0xBB));
        let img = m.line_image(LineAddr::containing(PhysAddr::new(64)));
        assert_eq!(u64::from_le_bytes(img[0..8].try_into().unwrap()), 0xAA);
        assert_eq!(u64::from_le_bytes(img[8..16].try_into().unwrap()), 0xBB);
        assert_eq!(u64::from_le_bytes(img[16..24].try_into().unwrap()), 0);
    }

    #[test]
    fn shadow_clear_models_power_loss() {
        let mut m = machine();
        m.shadow.store(PhysAddr::new(0), Word::new(9));
        m.shadow.clear();
        assert!(m.shadow.is_empty());
        assert_eq!(m.shadow.load(PhysAddr::new(0), &m.pm), Word::ZERO);
    }

    #[test]
    fn coalesced_writes_charge_fills_only() {
        let mut m = machine();
        let a1 = m.pm_write_coalesced(Cycles::ZERO, PhysAddr::new(0), &[1u8; 8]);
        // Second word in the same buffer line: zero fresh fills, bus only.
        let a2 = m.pm_write_coalesced(a1.admit, PhysAddr::new(8), &[2u8; 8]);
        let bus_only = m.config.memctrl.service_cycles(8, 0);
        assert!(a2.complete - a1.complete <= Cycles::new(bus_only));
    }

    #[test]
    fn write_through_charges_media_programs() {
        let mut m = machine();
        let a = m.pm_write_through(Cycles::ZERO, PhysAddr::new(0), &[1u8; 64]);
        let expected = m.config.memctrl.service_cycles(64, 1);
        assert_eq!(a.complete.as_u64(), expected);
    }

    #[test]
    fn writeback_line_uses_architectural_image() {
        let mut m = machine();
        m.shadow.store(PhysAddr::new(128), Word::new(42));
        m.writeback_line(Cycles::ZERO, LineAddr::containing(PhysAddr::new(128)), true);
        m.pm.flush_all();
        assert_eq!(m.pm.peek_word(PhysAddr::new(128)), Word::new(42));
    }

    #[test]
    fn multi_mc_routing_interleaves_and_homes() {
        let mut cfg = SimConfig::table_ii(4);
        cfg.num_mcs = 2;
        let m = Machine::new(&cfg);
        assert_eq!(m.mcs.len(), 2);
        // Cachelines interleave across controllers...
        assert_eq!(m.mc_for_addr(PhysAddr::new(0)), 0);
        assert_eq!(m.mc_for_addr(PhysAddr::new(64)), 1);
        assert_eq!(m.mc_for_addr(PhysAddr::new(128)), 0);
        // ...while each core has a fixed home controller.
        assert_eq!(m.home_mc(silo_types::CoreId::new(0)), 0);
        assert_eq!(m.home_mc(silo_types::CoreId::new(1)), 1);
        assert_eq!(m.home_mc(silo_types::CoreId::new(2)), 0);
    }

    #[test]
    fn address_less_reads_route_via_explicit_mc() {
        let mut cfg = SimConfig::table_ii(2);
        cfg.num_mcs = 2;
        let mut m = Machine::new(&cfg);
        let home = m.home_mc(silo_types::CoreId::new(1));
        assert_eq!(home, 1);
        m.pm_read_via(home, Cycles::ZERO);
        assert_eq!(
            m.mcs[0].stats().reads,
            0,
            "MC 0 must not absorb core 1's reads"
        );
        assert_eq!(m.mcs[1].stats().reads, 1);
        // The addressed path picks the interleaved controller.
        m.pm_read_at(Cycles::ZERO, PhysAddr::new(64));
        assert_eq!(m.mcs[1].stats().reads, 2);
    }

    #[test]
    fn mc_stats_total_sums_controllers() {
        let mut cfg = SimConfig::table_ii(1);
        cfg.num_mcs = 2;
        let mut m = Machine::new(&cfg);
        m.pm_write_through_via(0, Cycles::ZERO, PhysAddr::new(0), &[1u8; 8]);
        m.pm_write_through_via(1, Cycles::ZERO, PhysAddr::new(64), &[1u8; 8]);
        m.pm_write_through_via(1, Cycles::ZERO, PhysAddr::new(128), &[1u8; 8]);
        let total = m.mc_stats_total();
        assert_eq!(total.writes, 3);
        assert_eq!(m.mcs[0].stats().writes, 1);
        assert_eq!(m.mcs[1].stats().writes, 2);
    }

    #[test]
    #[should_panic(expected = "at least one memory controller")]
    fn zero_mcs_rejected() {
        let mut cfg = SimConfig::table_ii(1);
        cfg.num_mcs = 0;
        let _ = Machine::new(&cfg);
    }

    #[test]
    fn machine_components_start_idle() {
        let m = machine();
        assert_eq!(m.pm.stats().accepted_writes, 0);
        assert_eq!(m.mc_stats_total().writes, 0);
        assert_eq!(m.caches.stats().l1, (0, 0));
    }
}
