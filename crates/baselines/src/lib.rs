//! Baseline hardware logging schemes evaluated against Silo (paper §VI-A).
//!
//! Four designs, each implementing
//! [`LoggingScheme`](silo_sim::LoggingScheme) over the same machine model
//! Silo runs on, with their paper-documented ordering constraints
//! (Fig 2, Fig 3):
//!
//! * [`BaseScheme`] — "flushes an undo+redo log entry and the
//!   corresponding updated cacheline for each write"; commit waits for
//!   every persist of the transaction.
//! * [`FwbScheme`] — FWB \[38\]: per-store undo+redo logging, log forced
//!   before data, with a periodic cache force-write-back sweep
//!   (3 M cycles) that also truncates fully covered logs.
//! * [`MorLogScheme`] — MorLog \[52\]: morphable logging. Entries merge in
//!   an on-chip buffer (eliminating intermediate redo data); at commit the
//!   survivors are written to the log region, choosing undo-only records
//!   when the data line already reached PM and undo+redo otherwise; commit
//!   waits for draining those log writes.
//! * [`SwLogScheme`] — software WAL (Fig 1a): clwb + sfence per log on
//!   the critical path; the §II-B motivation baseline.
//! * [`EadrSwLogScheme`] — software WAL on an eADR platform: no fences,
//!   but append-only log stores pollute the cache; the §II-C argument.
//! * [`LadScheme`] — LAD \[18\]: logless atomic durability. Updated
//!   cachelines are held in a persistent memory-controller buffer;
//!   commit's Prepare phase drains the transaction's dirty L1 lines
//!   through the hierarchy (stalling per line), and MC-buffer overflow
//!   falls back to a slow mode that reads PM to build undo logs.
//!
//! None of them use Silo's on-PM write-coalescing path (§III-E frames it
//! as part of the Silo design), so their PM writes program the media
//! directly (modulo data-comparison-write).
//!
//! Recovery for the logging baselines reuses the log-region scan of
//! `silo-core` — the record wire format is shared — with commit markers
//! (ID tuples) written at commit time.
//!
//! # Examples
//!
//! ```
//! use silo_baselines::BaseScheme;
//! use silo_sim::{Engine, SimConfig, Transaction};
//! use silo_types::{PhysAddr, Word};
//!
//! let config = SimConfig::table_ii(1);
//! let mut base = BaseScheme::new(&config);
//! let tx = Transaction::builder().write(PhysAddr::new(0), Word::new(1)).build();
//! let out = Engine::new(&config, &mut base).run(vec![vec![tx]], None);
//! assert_eq!(out.stats.txs_committed, 1);
//! assert!(out.stats.pm.log_region_writes > 0); // logs written even crash-free
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod base;
mod common;
mod eadr;
mod fwb;
mod lad;
mod morlog;
mod swlog;

pub use base::BaseScheme;
pub use eadr::EadrSwLogScheme;
pub use fwb::FwbScheme;
pub use lad::LadScheme;
pub use morlog::MorLogScheme;
pub use swlog::SwLogScheme;
