//! Software write-ahead logging (paper Fig 1a, §II-B).
//!
//! The motivation baseline: logs are created by *program code* and
//! persisted with `clwb` + `sfence` before the corresponding data may be
//! written, so every log operation sits on the critical path — the paper
//! cites up to a 70 % throughput loss versus hardware logging. This scheme
//! exists to reproduce that motivation (see the `motivation_sw_logging`
//! bench target); the paper's evaluation section itself compares hardware
//! designs only.

use std::collections::BTreeSet;

use silo_core::{recover_log_region, LogEntry, Record, RECORD_BYTES};
use silo_sim::{EvictAction, LoggingScheme, Machine, RecoveryReport, SchemeStats, SimConfig};
use silo_types::{CoreId, Cycles, LineAddr, PhysAddr, TxTag, Word};

use crate::common::{area_bases, write_line, write_records, CoreCursor};

/// Cycles of instruction overhead for composing a log entry in software
/// (address arithmetic, stores to the log cacheline, clwb issue).
const SW_LOG_COMPOSE_CYCLES: u64 = 30;

/// Software undo+redo logging: per store, the program composes a log
/// entry, `clwb`s it, and `sfence`s — stalling for the flush's memory
/// round trip — before the data store may proceed. At commit the program
/// `clwb`s every written data line, fences, persists a commit record, and
/// fences again (the full Fig 1a sequence), after which the logs are
/// truncatable.
#[derive(Clone, Debug)]
pub struct SwLogScheme {
    cores: Vec<CoreCursor>,
    written_lines: Vec<BTreeSet<LineAddr>>,
    /// clwb + sfence acknowledgment round trip to the memory controller.
    fence_cycles: u64,
    bases: Vec<PhysAddr>,
    stats: SchemeStats,
}

impl SwLogScheme {
    /// Builds the software-logging baseline for `config`'s machine.
    pub fn new(config: &SimConfig) -> Self {
        SwLogScheme {
            cores: (0..config.cores)
                .map(|i| CoreCursor::new(config, i))
                .collect(),
            written_lines: vec![BTreeSet::new(); config.cores],
            // The fence waits for the MC's flush acknowledgment: one
            // memory round trip, same order as the device read latency.
            fence_cycles: config.memctrl.read_cycles,
            bases: area_bases(config),
            stats: SchemeStats::default(),
        }
    }
}

impl LoggingScheme for SwLogScheme {
    fn name(&self) -> &'static str {
        "SwLog"
    }

    fn on_tx_begin(&mut self, _m: &mut Machine, core: CoreId, tag: TxTag, now: Cycles) -> Cycles {
        let c = &mut self.cores[core.as_usize()];
        c.current_tag = Some(tag);
        c.persist_barrier = now;
        now
    }

    fn on_store(
        &mut self,
        m: &mut Machine,
        core: CoreId,
        addr: PhysAddr,
        old: Word,
        new: Word,
        now: Cycles,
    ) -> Cycles {
        let ci = core.as_usize();
        let Some(tag) = self.cores[ci].current_tag else {
            return now;
        };
        self.stats.log_entries_generated += 1;
        self.written_lines[ci].insert(addr.line());
        // Compose the entry in software...
        let t = now + Cycles::new(SW_LOG_COMPOSE_CYCLES);
        let entry = LogEntry::new(tag, addr.word_aligned(), old, new);
        let records = [entry.undo_record(), entry.redo_record()];
        // ...clwb it, and sfence: the store stream STALLS for the flush's
        // acknowledgment round trip before the data store may proceed
        // (Fig 1a's ordering) — the critical-path cost hardware logging
        // removes.
        let admitted = write_records(m, &mut self.cores[ci], &records, t);
        self.stats.log_entries_written_to_pm += 2;
        self.stats.log_bytes_written_to_pm += (2 * RECORD_BYTES) as u64;
        t.max(admitted) + Cycles::new(self.fence_cycles)
    }

    fn on_evict(
        &mut self,
        _m: &mut Machine,
        _core: CoreId,
        _line: LineAddr,
        now: Cycles,
    ) -> (EvictAction, Cycles) {
        (EvictAction::WriteBack, now)
    }

    fn on_tx_end(&mut self, m: &mut Machine, core: CoreId, tag: TxTag, now: Cycles) -> Cycles {
        let ci = core.as_usize();
        self.stats.transactions += 1;
        // clwb every written data line, then fence: durability for the
        // in-place data before the logs may be truncated.
        let lines: Vec<LineAddr> = std::mem::take(&mut self.written_lines[ci])
            .into_iter()
            .collect();
        let mut t = now;
        for line in lines {
            m.caches.flush_line(core, line);
            t = t.max(write_line(m, &mut self.cores[ci], line, t));
        }
        t += Cycles::new(self.fence_cycles);
        // Commit record + final fence.
        let commit_admit = write_records(m, &mut self.cores[ci], &[Record::id_tuple(tag)], t);
        self.stats.log_entries_written_to_pm += 1;
        self.stats.log_bytes_written_to_pm += RECORD_BYTES as u64;
        let done =
            self.cores[ci].barrier_wait(t).max(commit_admit) + Cycles::new(self.fence_cycles);
        if m.pm.power_tripped() {
            // Power failed inside the commit sequence: the core died
            // before the post-commit truncation, so the crash header
            // still bounds the undo records recovery needs to revoke
            // (or, if the ID tuple landed, the redo records to replay).
            return done;
        }
        self.cores[ci].area.truncate();
        self.cores[ci].current_tag = None;
        done
    }

    fn on_crash(&mut self, m: &mut Machine) {
        for (ci, c) in self.cores.iter_mut().enumerate() {
            c.area.write_crash_header(&mut m.pm);
            c.current_tag = None;
            self.written_lines[ci].clear();
        }
    }

    fn recover(&mut self, m: &mut Machine) -> RecoveryReport {
        let report = recover_log_region(&mut m.pm, &self.bases);
        for c in &mut self.cores {
            c.area.truncate();
        }
        report
    }

    fn stats(&self) -> SchemeStats {
        self.stats
    }

    silo_sim::impl_scheme_snapshot!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BaseScheme;
    use silo_sim::{Engine, Transaction};

    fn tx(writes: &[(u64, u64)]) -> Transaction {
        let mut b = Transaction::builder();
        for &(a, v) in writes {
            b = b.write(PhysAddr::new(a), Word::new(v));
        }
        b.build()
    }

    #[test]
    fn software_logging_is_slower_than_hardware_base() {
        // §II-B: "All log operations exist on the critical path, which
        // decreases the transaction throughput".
        let cfg = SimConfig::table_ii(1);
        let writes: Vec<(u64, u64)> = (0..10).map(|i| (i * 8, i + 1)).collect();
        let txs = || (0..30).map(|_| tx(&writes)).collect::<Vec<_>>();
        let mut sw = SwLogScheme::new(&cfg);
        let sw_out = Engine::new(&cfg, &mut sw).run(vec![txs()], None);
        let mut hw = BaseScheme::new(&cfg);
        let hw_out = Engine::new(&cfg, &mut hw).run(vec![txs()], None);
        assert!(
            sw_out.stats.throughput() < hw_out.stats.throughput(),
            "sw {} vs hw {}",
            sw_out.stats.throughput(),
            hw_out.stats.throughput()
        );
    }

    #[test]
    fn crash_sweep_is_consistent() {
        for crash_at in (100..15_000).step_by(1_733) {
            let cfg = SimConfig::table_ii(1);
            let mut sw = SwLogScheme::new(&cfg);
            let stream: Vec<Transaction> = (0..8)
                .map(|i| tx(&[(i * 8, i + 1), (512 + i * 8, i + 7)]))
                .collect();
            let out = Engine::new(&cfg, &mut sw).run(vec![stream], Some(Cycles::new(crash_at)));
            let crash = out.crash.expect("crash injected");
            assert!(
                crash.consistency.is_consistent(),
                "crash at {crash_at}: {:?}",
                crash.consistency.violations
            );
        }
    }
}
