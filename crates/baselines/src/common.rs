//! State shared by the logging baselines: per-core log cursors and the
//! commit persist barrier.

use silo_core::{Record, ThreadLogArea, RECORD_BYTES};
use silo_sim::{Machine, SimConfig};
use silo_types::{CoreId, Cycles, PhysAddr, TxTag};

/// Per-core bookkeeping common to Base / FWB / MorLog: the thread's log
/// area cursor, the in-flight transaction, and the latest WPQ admission
/// time the commit barrier must wait for.
#[derive(Clone, Debug)]
pub(crate) struct CoreCursor {
    pub area: ThreadLogArea,
    pub current_tag: Option<TxTag>,
    /// Latest persist (WPQ admission) of this transaction's writes; the
    /// ordering constraints of Fig 3 make commit wait for it.
    pub persist_barrier: Cycles,
}

impl CoreCursor {
    pub fn new(config: &SimConfig, core: usize) -> Self {
        let tid = CoreId::new(core).thread();
        CoreCursor {
            area: ThreadLogArea::new(config.thread_log_base(tid), config.thread_log_end(tid)),
            current_tag: None,
            persist_barrier: Cycles::ZERO,
        }
    }

    /// Raises the barrier to cover a new admission.
    pub fn cover(&mut self, admitted: Cycles) {
        self.persist_barrier = self.persist_barrier.max(admitted);
    }

    /// Commit wait: the later of `now` and the barrier.
    pub fn barrier_wait(&self, now: Cycles) -> Cycles {
        now.max(self.persist_barrier)
    }
}

/// Writes `records` contiguously into the core's log area via the
/// write-through path, raising the persist barrier. Returns the admission
/// time.
pub(crate) fn write_records(
    m: &mut Machine,
    cursor: &mut CoreCursor,
    records: &[Record],
    now: Cycles,
) -> Cycles {
    debug_assert!(!records.is_empty());
    let addr = cursor.area.reserve(records.len());
    let mut bytes = Vec::with_capacity(records.len() * RECORD_BYTES);
    for r in records {
        bytes.extend_from_slice(&r.encode());
    }
    let dropped = m.pm.dropped();
    let adm = m.pm_write_through(now, addr, &bytes);
    if m.pm.dropped() != dropped {
        // Power failed at this write: the device never received the
        // records, so the reservation must not survive into the crash
        // header (it would bound stale bytes of earlier transactions).
        cursor.area.rewind(records.len());
    }
    cursor.cover(adm.admit);
    adm.admit
}

/// Writes one group of records per hardware log-entry write: each group
/// is a single contiguous PM write request (one media program), the
/// convention of the per-entry logging paths. Returns the last admission.
pub(crate) fn write_entry_records(
    m: &mut Machine,
    cursor: &mut CoreCursor,
    groups: &[Vec<Record>],
    now: Cycles,
) -> Cycles {
    let mut last = now;
    for group in groups {
        if group.is_empty() {
            continue;
        }
        last = write_records(m, cursor, group, now);
    }
    last
}

/// Writes a full-cacheline architectural image via write-through and
/// raises the barrier (the per-store data flush of Base, the sweeps of
/// FWB, LAD's commit drain).
pub(crate) fn write_line(
    m: &mut Machine,
    cursor: &mut CoreCursor,
    line: silo_types::LineAddr,
    now: Cycles,
) -> Cycles {
    let image = m.line_image(line);
    let adm = m.pm_write_through(now, line.base(), &image);
    cursor.cover(adm.admit);
    adm.admit
}

/// All thread log-area bases for `config`.
pub(crate) fn area_bases(config: &SimConfig) -> Vec<PhysAddr> {
    (0..config.cores)
        .map(|i| config.thread_log_base(CoreId::new(i).thread()))
        .collect()
}
