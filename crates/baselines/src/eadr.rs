//! Software logging on an eADR platform (paper §II-C).
//!
//! With eADR the whole CPU cache is battery-backed, so software WAL needs
//! no `clwb`/`sfence` — but the paper argues it is *still* expensive:
//! append-only logs have fresh addresses every time, so they "cannot be
//! merged in cache", they "frequently write the CPU cache and cause random
//! data evictions", polluting locality (§II-C reason 1); and the
//! whole-cache battery is enormous (reason 2, quantified in Table IV).
//!
//! This scheme models reason 1: log entries are written *through the cache
//! hierarchy* like ordinary stores, competing with the application's
//! working set. Durability is free (persistent caches); atomicity still
//! needs the logs.

use silo_core::{recover_log_region, LogEntry, Record, RECORD_BYTES};
use silo_sim::{EvictAction, LoggingScheme, Machine, RecoveryReport, SchemeStats, SimConfig};
use silo_types::{CoreId, Cycles, LineAddr, PhysAddr, TxTag, Word};

use crate::common::{area_bases, CoreCursor};

/// Cycles of instruction overhead for composing a log entry in software.
const SW_LOG_COMPOSE_CYCLES: u64 = 30;

/// Software undo+redo logging on eADR: no fences, but every log entry is
/// appended through the (persistent) cache hierarchy, evicting application
/// data — the cache-pollution cost of §II-C.
///
/// Crash semantics in the model: eADR's battery drains the persistent
/// caches at power failure. The simulator treats caches as volatile, so
/// the model persists each log record's bytes the moment it is written
/// (the record provably sits in the persistent domain from then on) and
/// lets recovery rebuild committed data from redo records — byte-for-byte
/// the same post-recovery PM image the drained cache would have produced,
/// because the redo records carry exactly the cached data values.
#[derive(Clone, Debug)]
pub struct EadrSwLogScheme {
    cores: Vec<CoreCursor>,
    bases: Vec<PhysAddr>,
    stats: SchemeStats,
}

impl EadrSwLogScheme {
    /// Builds the eADR software-logging baseline for `config`'s machine.
    pub fn new(config: &SimConfig) -> Self {
        EadrSwLogScheme {
            cores: (0..config.cores)
                .map(|i| CoreCursor::new(config, i))
                .collect(),
            bases: area_bases(config),
            stats: SchemeStats::default(),
        }
    }
}

impl LoggingScheme for EadrSwLogScheme {
    fn name(&self) -> &'static str {
        "eADR-SwLog"
    }

    fn on_tx_begin(&mut self, _m: &mut Machine, core: CoreId, tag: TxTag, now: Cycles) -> Cycles {
        let c = &mut self.cores[core.as_usize()];
        c.current_tag = Some(tag);
        c.persist_barrier = now;
        now
    }

    fn on_store(
        &mut self,
        m: &mut Machine,
        core: CoreId,
        addr: PhysAddr,
        old: Word,
        new: Word,
        now: Cycles,
    ) -> Cycles {
        let ci = core.as_usize();
        let Some(tag) = self.cores[ci].current_tag else {
            return now;
        };
        self.stats.log_entries_generated += 1;
        let mut t = now + Cycles::new(SW_LOG_COMPOSE_CYCLES);
        // The log entry is STORED through the cache like any data: its two
        // records land on fresh append-only addresses, so nearly every log
        // store allocates a new line and evicts something (§II-C: "these
        // logs frequently write the CPU cache and cause random data
        // evictions").
        let entry = LogEntry::new(tag, addr.word_aligned(), old, new);
        let log_addr = self.cores[ci].area.reserve(2);
        let mut lost = 0;
        for (i, rec) in [entry.undo_record(), entry.redo_record()]
            .iter()
            .enumerate()
        {
            let rec_addr = log_addr.add((i * RECORD_BYTES) as u64);
            let acc = m.caches.access(core, rec_addr.line(), true);
            t += acc.latency;
            // Persist the record's bytes logically (the cache IS the
            // persistence domain under eADR, so the record is durable from
            // this point on).
            let dropped = m.pm.dropped();
            m.pm.write(rec_addr, &rec.encode());
            if m.pm.dropped() != dropped {
                lost += 1;
            }
            for wb in acc.pm_writebacks {
                let adm = m.writeback_line(t, wb, false);
                t = t.max(adm.admit);
            }
        }
        if lost > 0 {
            // Power failed at the record writes: the tail must not cover
            // bytes the device never received.
            self.cores[ci].area.rewind(lost);
        }
        self.stats.log_entries_written_to_pm += 2;
        self.stats.log_bytes_written_to_pm += (2 * RECORD_BYTES) as u64;
        t
    }

    fn on_evict(
        &mut self,
        _m: &mut Machine,
        _core: CoreId,
        _line: LineAddr,
        now: Cycles,
    ) -> (EvictAction, Cycles) {
        (EvictAction::WriteBack, now)
    }

    fn on_tx_end(&mut self, m: &mut Machine, core: CoreId, tag: TxTag, now: Cycles) -> Cycles {
        let ci = core.as_usize();
        self.stats.transactions += 1;
        // Commit record, also through the cache; no fence needed.
        let rec_addr = self.cores[ci].area.reserve(1);
        let acc = m.caches.access(core, rec_addr.line(), true);
        let mut t = now + acc.latency;
        let dropped = m.pm.dropped();
        m.pm.write(rec_addr, &Record::id_tuple(tag).encode());
        if m.pm.dropped() != dropped {
            self.cores[ci].area.rewind(1);
        }
        for wb in acc.pm_writebacks {
            let adm = m.writeback_line(t, wb, false);
            t = t.max(adm.admit);
        }
        self.stats.log_entries_written_to_pm += 1;
        self.stats.log_bytes_written_to_pm += RECORD_BYTES as u64;
        if m.pm.power_tripped() {
            // Power failed inside the commit sequence: the dead core
            // never cleared its transaction register.
            return t;
        }
        self.cores[ci].current_tag = None;
        t
    }

    fn on_crash(&mut self, m: &mut Machine) {
        // The eADR battery's whole-cache drain (the 54 mJ flush of
        // Table IV) is represented by the already-persistent log records;
        // only the headers bounding the valid region remain to write.
        for c in &mut self.cores {
            c.area.write_crash_header(&mut m.pm);
            c.current_tag = None;
        }
    }

    fn recover(&mut self, m: &mut Machine) -> RecoveryReport {
        let report = recover_log_region(&mut m.pm, &self.bases);
        for c in &mut self.cores {
            c.area.truncate();
        }
        report
    }

    fn stats(&self) -> SchemeStats {
        self.stats
    }

    silo_sim::impl_scheme_snapshot!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_sim::{Engine, Transaction};

    fn tx(writes: &[(u64, u64)]) -> Transaction {
        let mut b = Transaction::builder();
        for &(a, v) in writes {
            b = b.write(PhysAddr::new(a), Word::new(v));
        }
        b.build()
    }

    #[test]
    fn log_stores_pollute_the_cache() {
        // §II-C: the same transactions run with far more cache misses under
        // eADR software logging than under hardware logging, because log
        // appends allocate fresh lines.
        let cfg = SimConfig::table_ii(1);
        let writes: Vec<(u64, u64)> = (0..10).map(|i| (i * 8, i + 1)).collect();
        let txs = || (0..50).map(|_| tx(&writes)).collect::<Vec<_>>();

        let mut eadr = EadrSwLogScheme::new(&cfg);
        let eadr_out = Engine::new(&cfg, &mut eadr).run(vec![txs()], None);
        let mut silo = silo_core::SiloScheme::new(&cfg);
        let silo_out = Engine::new(&cfg, &mut silo).run(vec![txs()], None);

        let eadr_l1_misses = eadr_out.stats.cache.l1.1;
        let silo_l1_misses = silo_out.stats.cache.l1.1;
        assert!(
            eadr_l1_misses > 2 * silo_l1_misses,
            "eADR log appends must inflate cache misses: {eadr_l1_misses} vs {silo_l1_misses}"
        );
    }

    #[test]
    fn crash_sweep_is_consistent() {
        for crash_at in (100..15_000).step_by(1_313) {
            let cfg = SimConfig::table_ii(1);
            let mut scheme = EadrSwLogScheme::new(&cfg);
            let stream: Vec<Transaction> = (0..8)
                .map(|i| tx(&[(i * 8, i + 1), (512 + i * 8, i + 7)]))
                .collect();
            let out = Engine::new(&cfg, &mut scheme).run(vec![stream], Some(Cycles::new(crash_at)));
            let crash = out.crash.expect("crash injected");
            assert!(
                crash.consistency.is_consistent(),
                "crash at {crash_at}: {:?}",
                crash.consistency.violations
            );
        }
    }
}
