//! Base: per-store log + cacheline flush (paper §VI-A).

use silo_core::{recover_log_region, LogEntry};
use silo_sim::{EvictAction, LoggingScheme, Machine, RecoveryReport, SchemeStats, SimConfig};
use silo_types::{CoreId, Cycles, LineAddr, PhysAddr, TxTag, Word};

use crate::common::{area_bases, write_line, write_records, CoreCursor};

/// The hardware logging baseline: for **every** store it writes an
/// undo+redo log entry to the log region and flushes the updated cacheline
/// to the data region; commit waits for all of the transaction's persists
/// plus a commit record.
///
/// This is the `Base` configuration of the paper's evaluation — the
/// highest write traffic and the reference every figure normalizes to.
#[derive(Clone, Debug)]
pub struct BaseScheme {
    cores: Vec<CoreCursor>,
    bases: Vec<PhysAddr>,
    stats: SchemeStats,
}

impl BaseScheme {
    /// Builds the baseline for `config`'s machine.
    pub fn new(config: &SimConfig) -> Self {
        BaseScheme {
            cores: (0..config.cores)
                .map(|i| CoreCursor::new(config, i))
                .collect(),
            bases: area_bases(config),
            stats: SchemeStats::default(),
        }
    }
}

impl LoggingScheme for BaseScheme {
    fn name(&self) -> &'static str {
        "Base"
    }

    fn on_tx_begin(&mut self, _m: &mut Machine, core: CoreId, tag: TxTag, now: Cycles) -> Cycles {
        let c = &mut self.cores[core.as_usize()];
        c.current_tag = Some(tag);
        c.persist_barrier = now;
        now
    }

    fn on_store(
        &mut self,
        m: &mut Machine,
        core: CoreId,
        addr: PhysAddr,
        old: Word,
        new: Word,
        now: Cycles,
    ) -> Cycles {
        let ci = core.as_usize();
        let Some(tag) = self.cores[ci].current_tag else {
            return now;
        };
        self.stats.log_entries_generated += 1;
        // Undo+redo log entry, persisted before the data flush (the FIFO
        // WPQ preserves the order).
        let entry = LogEntry::new(tag, addr.word_aligned(), old, new);
        let records = [entry.undo_record(), entry.redo_record()];
        let t_log = write_records(m, &mut self.cores[ci], &records, now);
        self.stats.log_entries_written_to_pm += 2;
        self.stats.log_bytes_written_to_pm += (2 * silo_core::RECORD_BYTES) as u64;
        // The corresponding updated cacheline is flushed for each write.
        let line = addr.line();
        m.caches.flush_line(core, line);
        let t_data = write_line(m, &mut self.cores[ci], line, t_log);
        // Flushes run in hardware background; the store only stalls when
        // the WPQ is full (admission back-pressure reaches the store
        // buffer). Commit pays the rest via the barrier.
        now.max(t_log).max(t_data)
    }

    fn on_evict(
        &mut self,
        _m: &mut Machine,
        _core: CoreId,
        _line: LineAddr,
        now: Cycles,
    ) -> (EvictAction, Cycles) {
        (EvictAction::WriteBack, now)
    }

    fn on_tx_end(&mut self, m: &mut Machine, core: CoreId, tag: TxTag, now: Cycles) -> Cycles {
        let ci = core.as_usize();
        self.stats.transactions += 1;
        // Commit record persists after everything else...
        let commit_admit = write_records(
            m,
            &mut self.cores[ci],
            &[silo_core::Record::id_tuple(tag)],
            now,
        );
        self.stats.log_entries_written_to_pm += 1;
        self.stats.log_bytes_written_to_pm += silo_core::RECORD_BYTES as u64;
        // ...and commit waits for every persist of the transaction.
        let done = self.cores[ci].barrier_wait(now).max(commit_admit);
        if m.pm.power_tripped() {
            // Power failed inside the commit sequence: the core died
            // before the truncation, so the crash header still bounds
            // the records recovery needs.
            return done;
        }
        // Data is durably in PM: the logs are truncated (register reset).
        self.cores[ci].area.truncate();
        self.cores[ci].current_tag = None;
        done
    }

    fn on_crash(&mut self, m: &mut Machine) {
        for c in &mut self.cores {
            c.area.write_crash_header(&mut m.pm);
            c.current_tag = None;
        }
    }

    fn recover(&mut self, m: &mut Machine) -> RecoveryReport {
        let report = recover_log_region(&mut m.pm, &self.bases);
        for c in &mut self.cores {
            c.area.truncate();
        }
        report
    }

    fn stats(&self) -> SchemeStats {
        self.stats
    }

    silo_sim::impl_scheme_snapshot!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_sim::{Engine, Transaction};

    fn tx(writes: &[(u64, u64)]) -> Transaction {
        let mut b = Transaction::builder();
        for &(a, v) in writes {
            b = b.write(PhysAddr::new(a), Word::new(v));
        }
        b.build()
    }

    #[test]
    fn every_store_writes_log_and_line() {
        let cfg = SimConfig::table_ii(1);
        let mut base = BaseScheme::new(&cfg);
        let out = Engine::new(&cfg, &mut base).run(vec![vec![tx(&[(0, 1), (8, 2)])]], None);
        let s = out.stats;
        // 2 log-record writes + 2 line flushes + 1 commit record.
        assert_eq!(s.pm.log_region_writes, 3);
        assert_eq!(s.pm.data_region_writes, 2);
        assert_eq!(s.scheme_stats.log_entries_written_to_pm, 5);
        assert!(s.media_writes() >= 4, "no coalescing for the baseline");
    }

    #[test]
    fn commit_waits_for_persists() {
        let cfg = SimConfig::table_ii(1);
        let mut base = BaseScheme::new(&cfg);
        let writes: Vec<(u64, u64)> = (0..16).map(|i| (i * 8, i)).collect();
        let out = Engine::new(&cfg, &mut base).run(vec![vec![tx(&writes)]], None);
        assert_eq!(out.stats.txs_committed, 1);
    }

    #[test]
    fn crash_mid_tx_is_revoked() {
        let cfg = SimConfig::table_ii(1);
        let mut base = BaseScheme::new(&cfg);
        let writes: Vec<(u64, u64)> = (0..32).map(|i| (i * 8, 0xAB + i)).collect();
        let out = Engine::new(&cfg, &mut base).run(vec![vec![tx(&writes)]], Some(Cycles::new(300)));
        let crash = out.crash.expect("crash injected");
        assert_eq!(crash.committed_txs, 0);
        assert!(crash.consistency.is_consistent(), "{:?}", crash.consistency);
    }

    #[test]
    fn crash_after_commit_preserves_data() {
        let cfg = SimConfig::table_ii(1);
        let mut base = BaseScheme::new(&cfg);
        let out = Engine::new(&cfg, &mut base)
            .run(vec![vec![tx(&[(0, 7)])]], Some(Cycles::new(1_000_000)));
        let crash = out.crash.expect("crash injected");
        assert_eq!(crash.committed_txs, 1);
        assert!(crash.consistency.is_consistent(), "{:?}", crash.consistency);
    }

    #[test]
    fn crash_probe_sweep_is_consistent() {
        for crash_at in (0..20_000).step_by(997) {
            let cfg = SimConfig::table_ii(2);
            let mut base = BaseScheme::new(&cfg);
            let s0: Vec<Transaction> = (0..5)
                .map(|i| tx(&[(i * 8, i + 1), (512 + i * 8, i + 9)]))
                .collect();
            let s1: Vec<Transaction> = (0..5).map(|i| tx(&[(1 << 16 | (i * 8), i + 50)])).collect();
            let out = Engine::new(&cfg, &mut base).run(vec![s0, s1], Some(Cycles::new(crash_at)));
            let crash = out.crash.expect("crash injected");
            assert!(
                crash.consistency.is_consistent(),
                "crash at {crash_at}: {:?}",
                crash.consistency.violations
            );
        }
    }
}
