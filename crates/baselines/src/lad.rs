//! LAD: distributed logless atomic durability (Gupta et al., MICRO'19;
//! paper §V, §VI-A).

use silo_core::{recover_log_region, Record, RecordKind, RECORD_BYTES};
use silo_sim::{EvictAction, LoggingScheme, Machine, RecoveryReport, SchemeStats, SimConfig};
use silo_types::{CoreId, Cycles, FxHashSet, LineAddr, PhysAddr, TxTag, Word};

use crate::common::{area_bases, write_records, CoreCursor};

#[derive(Clone, Debug)]
struct LadCore {
    cursor: CoreCursor,
    /// Cachelines written by the in-flight transaction.
    written_lines: FxHashSet<LineAddr>,
    /// Lines evicted mid-transaction and absorbed into the persistent MC
    /// buffer (discarded wholesale if the transaction never commits).
    absorbed: FxHashSet<LineAddr>,
    /// Pre-Prepare images of lines drained during the current commit.
    /// Until the Commit message, the MC buffer still tags these lines
    /// with the transaction; a power failure invalidates the tags, so
    /// the media must revert to these images (paper §V).
    prepared: Vec<(LineAddr, Vec<u8>)>,
}

/// LAD: no logs in the common case. Updated cachelines evicted
/// mid-transaction are **absorbed** into a persistent MC buffer instead of
/// reaching PM; at commit the **Prepare** phase drains every still-dirty
/// transaction line from L1 through the hierarchy to the MC (stalling one
/// flush-chain latency per line — the cost Fig 12 charges LAD for), then
/// the **Commit** phase only sends messages. When the MC buffer
/// overflows, LAD falls back to **slow mode**: it reads the line's old
/// contents from PM, writes undo records for them, and lets the eviction
/// proceed to PM (paper §V point 3).
#[derive(Clone, Debug)]
pub struct LadScheme {
    cores: Vec<LadCore>,
    bases: Vec<PhysAddr>,
    mc_buffer_capacity: usize,
    commit_msg_cycles: u64,
    flush_chain: Cycles,
    slow_mode_lines: u64,
    /// Completion times of prepared lines still occupying the MC buffer:
    /// LAD "stores the entire cacheline in MC" from Prepare until the
    /// media write completes, which is what makes its buffer "easily
    /// cause overflows" (paper §V).
    in_flight: std::collections::VecDeque<u64>,
    stats: SchemeStats,
}

impl LadScheme {
    /// Builds LAD for `config`'s machine (MC buffer capacity from
    /// `config.lad_mc_buffer_lines`).
    pub fn new(config: &SimConfig) -> Self {
        LadScheme {
            cores: (0..config.cores)
                .map(|i| LadCore {
                    cursor: CoreCursor::new(config, i),
                    written_lines: FxHashSet::default(),
                    absorbed: FxHashSet::default(),
                    prepared: Vec::new(),
                })
                .collect(),
            bases: area_bases(config),
            mc_buffer_capacity: config.lad_mc_buffer_lines,
            commit_msg_cycles: config.commit_ack_cycles,
            flush_chain: config.hierarchy.flush_chain_latency(),
            slow_mode_lines: 0,
            in_flight: std::collections::VecDeque::new(),
            stats: SchemeStats::default(),
        }
    }

    /// Lines that fell back to slow mode (MC buffer overflow).
    pub fn slow_mode_lines(&self) -> u64 {
        self.slow_mode_lines
    }

    /// MC-buffer lines held at `now`: absorbed evictions plus prepared
    /// lines whose media writes have not completed.
    fn mc_buffer_occupancy(&mut self, now: Cycles) -> usize {
        let t = now.as_u64();
        while self.in_flight.front().is_some_and(|&c| c <= t) {
            self.in_flight.pop_front();
        }
        let absorbed: usize = self.cores.iter().map(|c| c.absorbed.len()).sum();
        absorbed + self.in_flight.len()
    }
}

impl LoggingScheme for LadScheme {
    fn name(&self) -> &'static str {
        "LAD"
    }

    fn on_tx_begin(&mut self, _m: &mut Machine, core: CoreId, tag: TxTag, now: Cycles) -> Cycles {
        let c = &mut self.cores[core.as_usize()];
        debug_assert!(c.written_lines.is_empty() && c.absorbed.is_empty());
        debug_assert!(c.prepared.is_empty());
        c.cursor.current_tag = Some(tag);
        c.cursor.persist_barrier = now;
        now
    }

    fn on_store(
        &mut self,
        _m: &mut Machine,
        core: CoreId,
        addr: PhysAddr,
        _old: Word,
        _new: Word,
        now: Cycles,
    ) -> Cycles {
        let c = &mut self.cores[core.as_usize()];
        if c.cursor.current_tag.is_some() {
            c.written_lines.insert(addr.line());
        }
        now
    }

    fn on_evict(
        &mut self,
        m: &mut Machine,
        _core: CoreId,
        line: LineAddr,
        now: Cycles,
    ) -> (EvictAction, Cycles) {
        // Does the line belong to some in-flight transaction?
        let owner = self.cores.iter().position(|c| {
            c.cursor.current_tag.is_some()
                && (c.written_lines.contains(&line) || c.absorbed.contains(&line))
        });
        let Some(oi) = owner else {
            return (EvictAction::WriteBack, now); // committed data: normal path
        };
        if self.cores[oi].absorbed.contains(&line) {
            return (EvictAction::Absorb, now); // already buffered
        }
        if self.mc_buffer_occupancy(now) < self.mc_buffer_capacity {
            self.cores[oi].absorbed.insert(line);
            return (EvictAction::Absorb, now);
        }
        // Slow mode: read the old line from PM, write undo records for its
        // words, and let the partial update proceed to the data region.
        self.slow_mode_lines += 1;
        self.stats.overflow_events += 1;
        let done = m.pm_read_at(now, line.base());
        let old_image = m.pm.peek(line.base(), silo_types::LINE_BYTES);
        let tag = self.cores[oi]
            .cursor
            .current_tag
            .expect("owner has an in-flight transaction");
        let records: Vec<Record> = line
            .words()
            .enumerate()
            .map(|(i, waddr)| Record {
                kind: RecordKind::Undo,
                flush_bit: true,
                tag,
                addr: waddr,
                data: Word::from_le_bytes(
                    old_image[i * 8..(i + 1) * 8].try_into().expect("8 bytes"),
                ),
            })
            .collect();
        let n = records.len();
        let admitted = write_records(m, &mut self.cores[oi].cursor, &records, done);
        self.stats.log_entries_written_to_pm += n as u64;
        self.stats.log_bytes_written_to_pm += (n * RECORD_BYTES) as u64;
        (EvictAction::WriteBack, done.max(admitted))
    }

    fn on_tx_end(&mut self, m: &mut Machine, core: CoreId, _tag: TxTag, now: Cycles) -> Cycles {
        let ci = core.as_usize();
        self.stats.transactions += 1;
        let mut t = now;
        let written: Vec<LineAddr> = {
            let mut v: Vec<LineAddr> = self.cores[ci].written_lines.iter().copied().collect();
            v.sort();
            v
        };
        // Prepare: drain the transaction's lines to the persistent MC
        // domain, then to PM. Each write chains through WPQ admission, so
        // a full queue back-pressures the drain.
        for line in written {
            let absorbed = self.cores[ci].absorbed.remove(&line);
            let needs_write = absorbed || m.caches.line_dirty(core, line);
            if !needs_write {
                continue; // the line reached PM through slow mode already
            }
            // The prepared line needs an MC-buffer slot until its media
            // write completes; overflowing forces the slow mode: read the
            // old line from PM while waiting for space (paper §V point 3).
            if self.mc_buffer_occupancy(t) >= self.mc_buffer_capacity {
                self.slow_mode_lines += 1;
                self.stats.overflow_events += 1;
                t = m.pm_read_at(t, line.base());
            }
            if !absorbed {
                // Still on chip: flush L1 -> L2 -> LLC -> MC, stalling the
                // core for the chain (the Prepare-phase cost).
                m.caches.flush_line(core, line);
                t += self.flush_chain;
            }
            // The MC buffer tags the prepared line with this transaction
            // until Commit; keep the pre-image so a power failure can
            // discard the tagged write (`on_crash`).
            let pre = m.pm.peek(line.base(), silo_types::LINE_BYTES);
            self.cores[ci].prepared.push((line, pre));
            let image = m.line_image(line);
            let adm = m.pm_write_through(t, line.base(), &image);
            self.cores[ci].cursor.cover(adm.admit);
            t = t.max(adm.admit);
            self.in_flight.push_back(adm.complete.as_u64());
        }
        // Commit phase: only messages.
        let done = self.cores[ci].cursor.barrier_wait(t) + Cycles::new(self.commit_msg_cycles);
        if m.pm.power_tripped() {
            // Power failed inside Prepare/Commit: the Commit message was
            // never sent, so the MC buffer's tags still cover the
            // `prepared` images for `on_crash` to discard, and the slow-
            // mode undo records stay bounded by the crash header.
            return done;
        }
        // Slow-mode undo logs are obsolete once the transaction commits.
        self.cores[ci].cursor.area.truncate();
        self.cores[ci].cursor.current_tag = None;
        self.cores[ci].written_lines.clear();
        self.cores[ci].absorbed.clear();
        self.cores[ci].prepared.clear();
        done
    }

    fn on_crash(&mut self, m: &mut Machine) {
        // Uncommitted absorbed lines are discarded with the MC buffer
        // tags; slow-mode undo records need their headers for recovery.
        // Lines drained during an interrupted Prepare are still tagged
        // with the uncommitted transaction, so the power failure reverts
        // them to their pre-Prepare images (paper §V).
        for c in &mut self.cores {
            if c.cursor.current_tag.is_some() {
                for (line, pre) in c.prepared.drain(..) {
                    m.pm.discard_to(line.base(), &pre);
                }
            }
            c.prepared.clear();
            c.cursor.area.write_crash_header(&mut m.pm);
            c.cursor.current_tag = None;
            c.written_lines.clear();
            c.absorbed.clear();
        }
    }

    fn recover(&mut self, m: &mut Machine) -> RecoveryReport {
        // No ID tuples are ever written: every surviving record is an undo
        // of an uncommitted transaction's slow-mode line.
        let report = recover_log_region(&mut m.pm, &self.bases);
        for c in &mut self.cores {
            c.cursor.area.truncate();
            c.prepared.clear();
        }
        report
    }

    fn stats(&self) -> SchemeStats {
        self.stats
    }

    silo_sim::impl_scheme_snapshot!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_sim::{Engine, Transaction};

    fn tx(writes: &[(u64, u64)]) -> Transaction {
        let mut b = Transaction::builder();
        for &(a, v) in writes {
            b = b.write(PhysAddr::new(a), Word::new(v));
        }
        b.build()
    }

    #[test]
    fn no_logs_in_the_common_case() {
        let cfg = SimConfig::table_ii(1);
        let mut lad = LadScheme::new(&cfg);
        let out = Engine::new(&cfg, &mut lad).run(vec![vec![tx(&[(0, 1), (8, 2)])]], None);
        assert_eq!(out.stats.pm.log_region_writes, 0);
        // One line covers both words: one data write at Prepare.
        assert_eq!(out.stats.pm.data_region_writes, 1);
    }

    #[test]
    fn prepare_stalls_per_dirty_line() {
        let cfg = SimConfig::table_ii(1);
        // 8 distinct lines: prepare drains 8.
        let writes: Vec<(u64, u64)> = (0..8).map(|i| (i * 64, i + 1)).collect();
        let mut lad = LadScheme::new(&cfg);
        let out = Engine::new(&cfg, &mut lad).run(vec![vec![tx(&writes)]], None);
        assert_eq!(out.stats.pm.data_region_writes, 8);
        // The commit stall grows with the line count: at least 8 chains.
        assert!(out.stats.sim_cycles >= Cycles::new(8 * 44));
    }

    #[test]
    fn crash_mid_tx_discards_unprepared_data() {
        let cfg = SimConfig::table_ii(1);
        let writes: Vec<(u64, u64)> = (0..32).map(|i| (i * 8, 0xCD + i)).collect();
        let mut lad = LadScheme::new(&cfg);
        let out = Engine::new(&cfg, &mut lad).run(vec![vec![tx(&writes)]], Some(Cycles::new(300)));
        let crash = out.crash.expect("crash injected");
        assert_eq!(crash.committed_txs, 0);
        assert!(crash.consistency.is_consistent(), "{:?}", crash.consistency);
    }

    #[test]
    fn crash_after_commit_keeps_data() {
        let cfg = SimConfig::table_ii(1);
        let mut lad = LadScheme::new(&cfg);
        let out = Engine::new(&cfg, &mut lad)
            .run(vec![vec![tx(&[(0, 5)])]], Some(Cycles::new(1_000_000)));
        let crash = out.crash.expect("crash injected");
        assert_eq!(crash.committed_txs, 1);
        assert!(crash.consistency.is_consistent(), "{:?}", crash.consistency);
    }

    #[test]
    fn crash_probe_sweep_is_consistent() {
        for crash_at in (0..20_000).step_by(1_531) {
            let cfg = SimConfig::table_ii(2);
            let mut lad = LadScheme::new(&cfg);
            let s0: Vec<Transaction> = (0..5)
                .map(|i| tx(&[(i * 8, i + 1), (512 + i * 8, i + 9)]))
                .collect();
            let s1: Vec<Transaction> = (0..5).map(|i| tx(&[(1 << 16 | (i * 8), i + 50)])).collect();
            let out = Engine::new(&cfg, &mut lad).run(vec![s0, s1], Some(Cycles::new(crash_at)));
            let crash = out.crash.expect("crash injected");
            assert!(
                crash.consistency.is_consistent(),
                "crash at {crash_at}: {:?}",
                crash.consistency.violations
            );
        }
    }
}
