//! MorLog: morphable hardware logging (Wei et al., ISCA'20; paper §II-D,
//! §VI-A).

use silo_core::{recover_log_region, LogBuffer, LogEntry, Record, RECORD_BYTES};
use silo_sim::{EvictAction, LoggingScheme, Machine, RecoveryReport, SchemeStats, SimConfig};
use silo_types::{CoreId, Cycles, LineAddr, PhysAddr, TxTag, Word};

use crate::common::{area_bases, write_entry_records, write_records, CoreCursor};

#[derive(Clone, Debug)]
struct MorCore {
    cursor: CoreCursor,
    buffer: LogBuffer,
}

/// MorLog: log entries accumulate and **merge** in an on-chip buffer
/// during execution, eliminating intermediate redo data; at commit the
/// surviving entries are written to the log region in one batch, choosing
/// the cheaper **morphable** record form per entry — undo-only when the
/// covered cacheline has already reached PM (its new data is durable),
/// undo+redo when the line is still dirty on chip. Commit waits for
/// draining these log writes ("MorLog waits for flushing all the logs in
/// the L1 cache and log buffers to PM before commit", §II-D); the
/// delay-persistence commit protocol is disabled, as in the paper's
/// evaluation (§VI-A).
///
/// Updated cachelines reach PM lazily through natural evictions — no
/// per-store data flush and no force write-back, which is why MorLog's
/// write traffic sits below FWB's by roughly the eliminated redo volume.
#[derive(Clone, Debug)]
pub struct MorLogScheme {
    cores: Vec<MorCore>,
    bases: Vec<PhysAddr>,
    overflow_batch: usize,
    stats: SchemeStats,
}

impl MorLogScheme {
    /// Builds MorLog for `config`'s machine (log buffer sized like Silo's
    /// for an apples-to-apples on-chip budget).
    pub fn new(config: &SimConfig) -> Self {
        MorLogScheme {
            cores: (0..config.cores)
                .map(|i| MorCore {
                    cursor: CoreCursor::new(config, i),
                    buffer: LogBuffer::new(config.log_buffer_entries),
                })
                .collect(),
            bases: area_bases(config),
            overflow_batch: config.overflow_batch_entries(),
            stats: SchemeStats::default(),
        }
    }
}

impl LoggingScheme for MorLogScheme {
    fn name(&self) -> &'static str {
        "MorLog"
    }

    fn on_tx_begin(&mut self, _m: &mut Machine, core: CoreId, tag: TxTag, now: Cycles) -> Cycles {
        let c = &mut self.cores[core.as_usize()];
        debug_assert!(c.buffer.is_empty());
        c.cursor.current_tag = Some(tag);
        c.cursor.persist_barrier = now;
        now
    }

    fn on_store(
        &mut self,
        m: &mut Machine,
        core: CoreId,
        addr: PhysAddr,
        old: Word,
        new: Word,
        now: Cycles,
    ) -> Cycles {
        let ci = core.as_usize();
        let Some(tag) = self.cores[ci].cursor.current_tag else {
            return now;
        };
        self.stats.log_entries_generated += 1;
        let mut t = now;
        let entry = LogEntry::new(tag, addr.word_aligned(), old, new);
        if self.cores[ci].buffer.needs_overflow_for(&entry) {
            // Buffer overflow: flush the oldest entries as undo+redo
            // records so the transaction can keep running.
            self.stats.overflow_events += 1;
            let batch = self.cores[ci]
                .buffer
                .take_overflow_batch(self.overflow_batch);
            let groups: Vec<Vec<Record>> = batch
                .iter()
                .map(|e| vec![e.undo_record(), e.redo_record()])
                .collect();
            let n: usize = groups.iter().map(Vec::len).sum();
            let core_state = &mut self.cores[ci];
            // Overflow flushing stalls the store only via WPQ back-pressure.
            t = t.max(write_entry_records(m, &mut core_state.cursor, &groups, now));
            self.stats.log_entries_written_to_pm += n as u64;
            self.stats.log_bytes_written_to_pm += (n * RECORD_BYTES) as u64;
        }
        if self.cores[ci].buffer.insert(entry) == silo_core::InsertOutcome::Merged {
            // The merge is MorLog's redo-elimination: the intermediate redo
            // value will never be written to PM.
            self.stats.log_entries_merged += 1;
        }
        t
    }

    fn on_evict(
        &mut self,
        _m: &mut Machine,
        _core: CoreId,
        _line: LineAddr,
        now: Cycles,
    ) -> (EvictAction, Cycles) {
        (EvictAction::WriteBack, now)
    }

    fn on_tx_end(&mut self, m: &mut Machine, core: CoreId, tag: TxTag, now: Cycles) -> Cycles {
        let ci = core.as_usize();
        self.stats.transactions += 1;
        self.stats.log_entries_remaining += self.cores[ci].buffer.len() as u64;
        // Morphable record selection: each entry is one hardware log write
        // (its undo half, plus the redo half only while the data line is
        // still dirty on chip — otherwise the redo write is eliminated,
        // the "morphable" saving). The ADR buffer keeps the entries until
        // the commit sequence finishes: a power failure mid-way must
        // still find them for `on_crash`'s undo flush.
        let groups: Vec<Vec<Record>> = self.cores[ci]
            .buffer
            .entries()
            .map(|e| {
                if m.caches.line_dirty(core, e.addr().line()) {
                    vec![e.undo_record(), e.redo_record()]
                } else {
                    vec![e.undo_record()]
                }
            })
            .collect();
        let n: usize = groups.iter().map(Vec::len).sum::<usize>() + 1;
        let core_state = &mut self.cores[ci];
        write_entry_records(m, &mut core_state.cursor, &groups, now);
        let commit_admit = write_records(m, &mut core_state.cursor, &[Record::id_tuple(tag)], now);
        self.stats.log_entries_written_to_pm += n as u64;
        self.stats.log_bytes_written_to_pm += (n * RECORD_BYTES) as u64;
        let done = core_state.cursor.barrier_wait(now).max(commit_admit);
        if m.pm.power_tripped() {
            // Power failed inside the commit sequence: the ADR log buffer
            // still holds the entries for `on_crash`'s undo flush, and
            // the dead core never ran the post-commit cleanup.
            return done;
        }
        let core_state = &mut self.cores[ci];
        core_state.buffer.drain_all();
        core_state.cursor.current_tag = None;
        done
    }

    fn on_crash(&mut self, m: &mut Machine) {
        for c in &mut self.cores {
            // The in-flight transaction's buffered entries live in the ADR
            // log buffer; flush their undo halves so recovery can revoke
            // any partial updates already evicted to PM.
            if c.cursor.current_tag.is_some() && !c.buffer.is_empty() {
                let entries = c.buffer.drain_all();
                let addr = c.cursor.area.reserve(entries.len());
                let mut bytes = Vec::with_capacity(entries.len() * RECORD_BYTES);
                for e in &entries {
                    bytes.extend_from_slice(&e.undo_record().encode());
                }
                m.pm.write(addr, &bytes);
                self.stats.log_entries_written_to_pm += entries.len() as u64;
                self.stats.log_bytes_written_to_pm += bytes.len() as u64;
            }
            c.cursor.area.write_crash_header(&mut m.pm);
            c.cursor.current_tag = None;
        }
    }

    fn recover(&mut self, m: &mut Machine) -> RecoveryReport {
        let report = recover_log_region(&mut m.pm, &self.bases);
        for c in &mut self.cores {
            c.cursor.area.truncate();
        }
        report
    }

    fn stats(&self) -> SchemeStats {
        self.stats
    }

    silo_sim::impl_scheme_snapshot!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_sim::{Engine, Transaction};

    fn tx(writes: &[(u64, u64)]) -> Transaction {
        let mut b = Transaction::builder();
        for &(a, v) in writes {
            b = b.write(PhysAddr::new(a), Word::new(v));
        }
        b.build()
    }

    #[test]
    fn merging_eliminates_intermediate_redo_writes() {
        let cfg = SimConfig::table_ii(1);
        let mut mor = MorLogScheme::new(&cfg);
        // Three stores to one word: one surviving entry.
        let out = Engine::new(&cfg, &mut mor).run(vec![vec![tx(&[(0, 1), (0, 2), (0, 3)])]], None);
        let s = out.stats.scheme_stats;
        assert_eq!(s.log_entries_merged, 2);
        assert_eq!(s.log_entries_remaining, 1);
        // One undo + one redo + the ID tuple.
        assert_eq!(s.log_entries_written_to_pm, 3);
    }

    #[test]
    fn fewer_log_bytes_than_per_store_logging() {
        let cfg = SimConfig::table_ii(1);
        let writes: Vec<(u64, u64)> = (0..10).flat_map(|i| [(i * 8, i), (i * 8, i + 1)]).collect();
        let mut mor = MorLogScheme::new(&cfg);
        let mor_out = Engine::new(&cfg, &mut mor).run(vec![vec![tx(&writes)]], None);
        let mut base = crate::BaseScheme::new(&cfg);
        let base_out = Engine::new(&cfg, &mut base).run(vec![vec![tx(&writes)]], None);
        assert!(
            mor_out.stats.scheme_stats.log_bytes_written_to_pm
                < base_out.stats.scheme_stats.log_bytes_written_to_pm
        );
    }

    #[test]
    fn overflow_keeps_transaction_running() {
        let cfg = SimConfig::table_ii(1);
        let writes: Vec<(u64, u64)> = (0..30).map(|i| (i * 8, i + 1)).collect();
        let mut mor = MorLogScheme::new(&cfg);
        let out = Engine::new(&cfg, &mut mor).run(vec![vec![tx(&writes)]], None);
        assert_eq!(out.stats.txs_committed, 1);
        assert!(out.stats.scheme_stats.overflow_events >= 1);
    }

    #[test]
    fn crash_probe_sweep_is_consistent() {
        for crash_at in (0..20_000).step_by(1_111) {
            let cfg = SimConfig::table_ii(2);
            let mut mor = MorLogScheme::new(&cfg);
            let s0: Vec<Transaction> = (0..5)
                .map(|i| tx(&[(i * 8, i + 1), (512 + i * 8, i + 9)]))
                .collect();
            let s1: Vec<Transaction> = (0..5).map(|i| tx(&[(1 << 16 | (i * 8), i + 50)])).collect();
            let out = Engine::new(&cfg, &mut mor).run(vec![s0, s1], Some(Cycles::new(crash_at)));
            let crash = out.crash.expect("crash injected");
            assert!(
                crash.consistency.is_consistent(),
                "crash at {crash_at}: {:?}",
                crash.consistency.violations
            );
        }
    }
}
