//! FWB: hardware undo+redo logging with periodic cache force write-back
//! (Ogleari et al., HPCA'18; paper §II-D, §VI-A).

use silo_core::{recover_log_region, LogEntry, Record, RECORD_BYTES};
use silo_sim::{EvictAction, LoggingScheme, Machine, RecoveryReport, SchemeStats, SimConfig};
use silo_types::{CoreId, Cycles, LineAddr, PhysAddr, TxTag, Word};

use crate::common::{area_bases, write_records, CoreCursor};

/// FWB: every store writes an undo+redo log entry to the log region
/// *before* the data may persist; updated cachelines stay dirty in the
/// cache and reach PM through natural evictions and a periodic **force
/// write-back** sweep (every 3,000,000 cycles, §VI-A). Commit waits for
/// the transaction's log persists plus a commit record; log truncation
/// happens at sweep boundaries, once all covered data is durably in PM.
#[derive(Clone, Debug)]
pub struct FwbScheme {
    cores: Vec<CoreCursor>,
    /// Cycle of each core's newest log-region record.
    last_record: Vec<Cycles>,
    bases: Vec<PhysAddr>,
    interval: u64,
    last_sweep: Cycles,
    sweeps: u64,
    stats: SchemeStats,
}

impl FwbScheme {
    /// Builds FWB for `config`'s machine (3 M-cycle interval from the
    /// config).
    pub fn new(config: &SimConfig) -> Self {
        FwbScheme {
            last_record: vec![Cycles::ZERO; config.cores],
            cores: (0..config.cores)
                .map(|i| CoreCursor::new(config, i))
                .collect(),
            bases: area_bases(config),
            interval: config.fwb_interval_cycles,
            last_sweep: Cycles::ZERO,
            sweeps: 0,
            stats: SchemeStats::default(),
        }
    }

    /// Number of force-write-back sweeps performed.
    pub fn sweeps(&self) -> u64 {
        self.sweeps
    }
}

impl LoggingScheme for FwbScheme {
    fn name(&self) -> &'static str {
        "FWB"
    }

    fn on_tx_begin(&mut self, _m: &mut Machine, core: CoreId, tag: TxTag, now: Cycles) -> Cycles {
        let ci = core.as_usize();
        // If a force write-back swept the caches after this core's newest
        // record, all its covered data is durably in PM: the whole area is
        // truncatable at the next transaction boundary.
        if self.last_sweep > self.last_record[ci] && self.cores[ci].area.used_bytes() > 0 {
            self.cores[ci].area.truncate();
        }
        let c = &mut self.cores[ci];
        c.current_tag = Some(tag);
        c.persist_barrier = now;
        now
    }

    fn on_store(
        &mut self,
        m: &mut Machine,
        core: CoreId,
        addr: PhysAddr,
        old: Word,
        new: Word,
        now: Cycles,
    ) -> Cycles {
        let ci = core.as_usize();
        let Some(tag) = self.cores[ci].current_tag else {
            return now;
        };
        self.stats.log_entries_generated += 1;
        // Log forced to PM before the updated data for each write; the
        // data itself stays cached.
        let entry = LogEntry::new(tag, addr.word_aligned(), old, new);
        let records = [entry.undo_record(), entry.redo_record()];
        let t = write_records(m, &mut self.cores[ci], &records, now);
        self.last_record[ci] = self.last_record[ci].max(t);
        self.stats.log_entries_written_to_pm += 2;
        self.stats.log_bytes_written_to_pm += (2 * RECORD_BYTES) as u64;
        // Background logging; only WPQ-full admission stalls the store.
        now.max(t)
    }

    fn on_evict(
        &mut self,
        _m: &mut Machine,
        _core: CoreId,
        _line: LineAddr,
        now: Cycles,
    ) -> (EvictAction, Cycles) {
        (EvictAction::WriteBack, now)
    }

    fn on_tx_end(&mut self, m: &mut Machine, core: CoreId, tag: TxTag, now: Cycles) -> Cycles {
        let ci = core.as_usize();
        self.stats.transactions += 1;
        let commit_admit = write_records(m, &mut self.cores[ci], &[Record::id_tuple(tag)], now);
        self.last_record[ci] = self.last_record[ci].max(now);
        self.stats.log_entries_written_to_pm += 1;
        self.stats.log_bytes_written_to_pm += RECORD_BYTES as u64;
        let done = self.cores[ci].barrier_wait(now).max(commit_admit);
        if m.pm.power_tripped() {
            // Power failed inside the commit sequence: the dead core
            // never cleared its transaction register.
            return done;
        }
        self.cores[ci].current_tag = None;
        done
    }

    fn on_tick(&mut self, m: &mut Machine, now: Cycles) {
        if now.saturating_sub(self.last_sweep) < Cycles::new(self.interval) {
            return;
        }
        self.last_sweep = now;
        self.sweeps += 1;
        // Force write-back: sweep every dirty line to PM. The sweep engine
        // is hardware background work that waits for WPQ slots, so its
        // writes chain through admission instead of flooding the queue.
        let lines = m.caches.force_writeback_all();
        let mut t = now;
        for line in lines {
            let image = m.line_image(line);
            t = t.max(m.pm_write_through(t, line.base(), &image).admit);
        }
        // ...after which every log covering a *finished* transaction is
        // truncatable. Areas with an in-flight transaction keep their undo
        // information (its partial data just persisted!).
        if m.pm.power_tripped() {
            // Power failed mid-sweep: some write-backs were dropped, so
            // the redo records they would have made obsolete must stay.
            return;
        }
        for c in &mut self.cores {
            if c.current_tag.is_none() {
                c.area.truncate();
            }
        }
    }

    fn on_crash(&mut self, m: &mut Machine) {
        for c in &mut self.cores {
            c.area.write_crash_header(&mut m.pm);
            c.current_tag = None;
        }
    }

    fn recover(&mut self, m: &mut Machine) -> RecoveryReport {
        let report = recover_log_region(&mut m.pm, &self.bases);
        for c in &mut self.cores {
            c.area.truncate();
        }
        report
    }

    fn stats(&self) -> SchemeStats {
        self.stats
    }

    silo_sim::impl_scheme_snapshot!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_sim::{Engine, Transaction};

    fn tx(writes: &[(u64, u64)]) -> Transaction {
        let mut b = Transaction::builder();
        for &(a, v) in writes {
            b = b.write(PhysAddr::new(a), Word::new(v));
        }
        b.build()
    }

    #[test]
    fn stores_log_but_do_not_flush_data() {
        let cfg = SimConfig::table_ii(1);
        let mut fwb = FwbScheme::new(&cfg);
        let out = Engine::new(&cfg, &mut fwb).run(vec![vec![tx(&[(0, 1), (8, 2)])]], None);
        // 2 log writes + 1 commit record; data stayed in cache (no sweep in
        // such a short run, no eviction pressure).
        assert_eq!(out.stats.pm.log_region_writes, 3);
        assert_eq!(out.stats.pm.data_region_writes, 0);
    }

    #[test]
    fn sweep_writes_dirty_lines_and_truncates() {
        let mut cfg = SimConfig::table_ii(1);
        cfg.fwb_interval_cycles = 500; // force frequent sweeps in the test
        let mut fwb = FwbScheme::new(&cfg);
        let txs: Vec<Transaction> = (0..20).map(|i| tx(&[(i * 64, i + 1)])).collect();
        let out = Engine::new(&cfg, &mut fwb).run(vec![txs], None);
        let mut fwb2 = FwbScheme::new(&cfg); // for sweeps introspection
        let _ = &mut fwb2;
        assert!(out.stats.pm.data_region_writes > 0, "sweeps flushed data");
    }

    #[test]
    fn crash_before_sweep_replays_committed_data_from_redo() {
        // Data never left the cache; without redo replay it would be lost.
        let cfg = SimConfig::table_ii(1);
        let mut fwb = FwbScheme::new(&cfg);
        let out = Engine::new(&cfg, &mut fwb).run(
            vec![vec![tx(&[(0, 7), (8, 9)])]],
            Some(Cycles::new(1_000_000)),
        );
        let crash = out.crash.expect("crash injected");
        assert_eq!(crash.committed_txs, 1);
        assert!(crash.recovery.replayed_words >= 2);
        assert!(crash.consistency.is_consistent(), "{:?}", crash.consistency);
    }

    #[test]
    fn crash_probe_sweep_is_consistent() {
        for crash_at in (0..20_000).step_by(1_313) {
            let mut cfg = SimConfig::table_ii(2);
            cfg.fwb_interval_cycles = 4_000; // sweeps interleave the crashes
            let mut fwb = FwbScheme::new(&cfg);
            let s0: Vec<Transaction> = (0..5)
                .map(|i| tx(&[(i * 8, i + 1), (512 + i * 8, i + 9)]))
                .collect();
            let s1: Vec<Transaction> = (0..5).map(|i| tx(&[(1 << 16 | (i * 8), i + 50)])).collect();
            let out = Engine::new(&cfg, &mut fwb).run(vec![s0, s1], Some(Cycles::new(crash_at)));
            let crash = out.crash.expect("crash injected");
            assert!(
                crash.consistency.is_consistent(),
                "crash at {crash_at}: {:?}",
                crash.consistency.violations
            );
        }
    }
}
