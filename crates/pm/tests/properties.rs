//! Property tests: the PM device against a flat-memory oracle.

#![cfg(feature = "proptest")]

use std::collections::HashMap;

use proptest::prelude::*;
use silo_pm::{Media, PmDevice, PmDeviceConfig};
use silo_types::{PhysAddr, BUF_LINE_BYTES};

#[derive(Debug, Clone)]
enum WriteKind {
    Staged,
    Through,
}

fn write_strategy() -> impl Strategy<Value = (u64, Vec<u8>, WriteKind)> {
    (
        0u64..4096,
        prop::collection::vec(any::<u8>(), 1..80),
        prop_oneof![Just(WriteKind::Staged), Just(WriteKind::Through)],
    )
}

proptest! {
    /// Any interleaving of coalesced and write-through writes must read
    /// back exactly like a flat byte array, both before and after a full
    /// buffer drain.
    #[test]
    fn device_matches_flat_memory_oracle(
        writes in prop::collection::vec(write_strategy(), 1..60),
        buffer_lines in 1usize..8,
    ) {
        let mut pm = PmDevice::new(PmDeviceConfig {
            buffer_lines,
            log_region_start: None,
        });
        let mut oracle: HashMap<u64, u8> = HashMap::new();
        for (addr, bytes, kind) in &writes {
            match kind {
                WriteKind::Staged => pm.write(PhysAddr::new(*addr), bytes),
                WriteKind::Through => {
                    pm.write_through(PhysAddr::new(*addr), bytes);
                }
            }
            for (i, b) in bytes.iter().enumerate() {
                oracle.insert(addr + i as u64, *b);
            }
        }
        // Read-through view.
        for probe in 0..5000u64 {
            let expected = oracle.get(&probe).copied().unwrap_or(0);
            prop_assert_eq!(pm.peek(PhysAddr::new(probe), 1)[0], expected);
        }
        // Post-drain view.
        pm.flush_all();
        for probe in 0..5000u64 {
            let expected = oracle.get(&probe).copied().unwrap_or(0);
            prop_assert_eq!(pm.peek(PhysAddr::new(probe), 1)[0], expected);
        }
    }

    /// Data-comparison-write: re-writing identical content through the
    /// direct path never programs the media again.
    #[test]
    fn dcw_suppresses_idempotent_rewrites(
        addr in 0u64..1024,
        bytes in prop::collection::vec(any::<u8>(), 1..64),
        repeats in 1usize..5,
    ) {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        pm.write_through(PhysAddr::new(addr), &bytes);
        let after_first = pm.stats().media_line_writes;
        for _ in 0..repeats {
            pm.write_through(PhysAddr::new(addr), &bytes);
        }
        prop_assert_eq!(pm.stats().media_line_writes, after_first);
    }

    /// Coalescing never inflates media traffic: the number of media line
    /// programs for staged writes is bounded by the number of distinct
    /// 256 B lines touched.
    #[test]
    fn staged_media_writes_bounded_by_touched_lines(
        writes in prop::collection::vec((0u64..8192, 1usize..64), 1..80),
    ) {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        let mut lines = std::collections::HashSet::new();
        for (addr, len) in &writes {
            pm.write(PhysAddr::new(*addr), &vec![0xAB; *len]);
            for b in *addr..(*addr + *len as u64) {
                lines.insert(b / 256);
            }
        }
        pm.flush_all();
        prop_assert!(pm.stats().media_line_writes as usize <= lines.len());
    }
}

/// One step of the paged-media differential: a masked write, a full line
/// program, a crash-time revert, or a copy-on-write snapshot.
#[derive(Debug, Clone)]
enum MediaOp {
    WriteMasked {
        line: u64,
        offset: usize,
        bytes: Vec<u8>,
    },
    ProgramLine {
        line: u64,
        data: Vec<u8>,
        valid: Vec<bool>,
    },
    Revert {
        addr: u64,
        bytes: Vec<u8>,
    },
    Snapshot,
}

/// Lines the differential plays over (spanning several 4 KiB pages).
const MODEL_LINES: u64 = 24;

fn media_op_strategy() -> impl Strategy<Value = MediaOp> {
    // A tiny byte alphabet so identical rewrites (DCW suppressions) and
    // zero-delta programs actually occur.
    let small = 0u8..4;
    prop_oneof![
        3 => (0..MODEL_LINES, 0..BUF_LINE_BYTES, prop::collection::vec(small.clone(), 1..64))
            .prop_map(|(line, offset, bytes)| MediaOp::WriteMasked { line, offset, bytes }),
        2 => (
            0..MODEL_LINES,
            prop::collection::vec(small.clone(), BUF_LINE_BYTES),
            prop::collection::vec(any::<bool>(), BUF_LINE_BYTES),
        )
            .prop_map(|(line, data, valid)| MediaOp::ProgramLine { line, data, valid }),
        1 => (0..MODEL_LINES * BUF_LINE_BYTES as u64, prop::collection::vec(small, 1..300))
            .prop_map(|(addr, bytes)| MediaOp::Revert { addr, bytes }),
        1 => Just(MediaOp::Snapshot),
    ]
}

/// The flat byte-map model the paged media is checked against: bytes plus
/// an independent recount of the durability counters.
#[derive(Default, Clone)]
struct ModelMedia {
    bytes: HashMap<u64, u8>,
    touched: std::collections::HashSet<u64>,
    line_writes: u64,
    bits_programmed: u64,
    dcw_suppressed: u64,
}

impl ModelMedia {
    fn write(&mut self, base: u64, new: &[(u64, u8)]) -> bool {
        let changed: u64 = new
            .iter()
            .map(|&(a, b)| (self.bytes.get(&a).copied().unwrap_or(0) ^ b).count_ones() as u64)
            .sum();
        self.touched.insert(base / BUF_LINE_BYTES as u64);
        if changed == 0 {
            self.dcw_suppressed += 1;
            return false;
        }
        for &(a, b) in new {
            self.bytes.insert(a, b);
        }
        self.line_writes += 1;
        self.bits_programmed += changed;
        true
    }

    fn read(&self, addr: u64, len: usize) -> Vec<u8> {
        (addr..addr + len as u64)
            .map(|a| self.bytes.get(&a).copied().unwrap_or(0))
            .collect()
    }
}

proptest! {
    /// The paged, Arc-shared, copy-on-write media against a flat byte-map
    /// model: any interleaving of masked writes, line programs, crash-time
    /// reverts, and mid-sequence snapshots yields an identical image, an
    /// identical durability-counter recount (line programs drive the
    /// `LineProgram` event stream, so equal counts mean equal event
    /// counts), and snapshots that stay frozen while the live media keeps
    /// mutating.
    #[test]
    fn paged_media_matches_byte_map_model(
        ops in prop::collection::vec(media_op_strategy(), 1..80),
    ) {
        let mut media = Media::new();
        let mut model = ModelMedia::default();
        let mut snapshots: Vec<(Media, ModelMedia)> = Vec::new();
        let span = (MODEL_LINES * BUF_LINE_BYTES as u64) as usize;
        for op in &ops {
            match op {
                MediaOp::WriteMasked { line, offset, bytes } => {
                    let len = bytes.len().min(BUF_LINE_BYTES - offset);
                    let base = line * BUF_LINE_BYTES as u64;
                    let got = media.write_masked(
                        PhysAddr::new(base),
                        &bytes[..len],
                        *offset,
                    );
                    let new: Vec<(u64, u8)> = bytes[..len]
                        .iter()
                        .enumerate()
                        .map(|(i, &b)| (base + (offset + i) as u64, b))
                        .collect();
                    prop_assert_eq!(got, model.write(base, &new), "write_masked verdict");
                }
                MediaOp::ProgramLine { line, data, valid } => {
                    let base = line * BUF_LINE_BYTES as u64;
                    let mut d = [0u8; BUF_LINE_BYTES];
                    let mut v = [false; BUF_LINE_BYTES];
                    d.copy_from_slice(data);
                    v.copy_from_slice(valid);
                    let got = media.program_line(PhysAddr::new(base), &d, &v);
                    let new: Vec<(u64, u8)> = (0..BUF_LINE_BYTES)
                        .filter(|&i| v[i])
                        .map(|i| (base + i as u64, d[i]))
                        .collect();
                    prop_assert_eq!(got, model.write(base, &new), "program_line verdict");
                }
                MediaOp::Revert { addr, bytes } => {
                    media.revert(PhysAddr::new(*addr), bytes);
                    for (i, &b) in bytes.iter().enumerate() {
                        let a = addr + i as u64;
                        model.bytes.insert(a, b);
                        model.touched.insert(a / BUF_LINE_BYTES as u64);
                    }
                }
                MediaOp::Snapshot => snapshots.push((media.clone(), model.clone())),
            }
        }
        prop_assert_eq!(media.read(PhysAddr::new(0), span), model.read(0, span));
        prop_assert_eq!(media.line_writes(), model.line_writes, "line programs");
        prop_assert_eq!(media.bits_programmed(), model.bits_programmed);
        prop_assert_eq!(media.dcw_suppressed(), model.dcw_suppressed);
        prop_assert_eq!(media.touched_lines(), model.touched.len());
        // Copy-on-write snapshots froze the image they were taken from.
        for (snap, snap_model) in &snapshots {
            prop_assert_eq!(
                snap.read(PhysAddr::new(0), span),
                snap_model.read(0, span),
                "snapshot image drifted after later writes"
            );
            prop_assert_eq!(snap.line_writes(), snap_model.line_writes);
        }
    }
}
