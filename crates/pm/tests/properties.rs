//! Property tests: the PM device against a flat-memory oracle.

#![cfg(feature = "proptest")]

use std::collections::HashMap;

use proptest::prelude::*;
use silo_pm::{PmDevice, PmDeviceConfig};
use silo_types::PhysAddr;

#[derive(Debug, Clone)]
enum WriteKind {
    Staged,
    Through,
}

fn write_strategy() -> impl Strategy<Value = (u64, Vec<u8>, WriteKind)> {
    (
        0u64..4096,
        prop::collection::vec(any::<u8>(), 1..80),
        prop_oneof![Just(WriteKind::Staged), Just(WriteKind::Through)],
    )
}

proptest! {
    /// Any interleaving of coalesced and write-through writes must read
    /// back exactly like a flat byte array, both before and after a full
    /// buffer drain.
    #[test]
    fn device_matches_flat_memory_oracle(
        writes in prop::collection::vec(write_strategy(), 1..60),
        buffer_lines in 1usize..8,
    ) {
        let mut pm = PmDevice::new(PmDeviceConfig {
            buffer_lines,
            log_region_start: None,
        });
        let mut oracle: HashMap<u64, u8> = HashMap::new();
        for (addr, bytes, kind) in &writes {
            match kind {
                WriteKind::Staged => pm.write(PhysAddr::new(*addr), bytes),
                WriteKind::Through => {
                    pm.write_through(PhysAddr::new(*addr), bytes);
                }
            }
            for (i, b) in bytes.iter().enumerate() {
                oracle.insert(addr + i as u64, *b);
            }
        }
        // Read-through view.
        for probe in 0..5000u64 {
            let expected = oracle.get(&probe).copied().unwrap_or(0);
            prop_assert_eq!(pm.peek(PhysAddr::new(probe), 1)[0], expected);
        }
        // Post-drain view.
        pm.flush_all();
        for probe in 0..5000u64 {
            let expected = oracle.get(&probe).copied().unwrap_or(0);
            prop_assert_eq!(pm.peek(PhysAddr::new(probe), 1)[0], expected);
        }
    }

    /// Data-comparison-write: re-writing identical content through the
    /// direct path never programs the media again.
    #[test]
    fn dcw_suppresses_idempotent_rewrites(
        addr in 0u64..1024,
        bytes in prop::collection::vec(any::<u8>(), 1..64),
        repeats in 1usize..5,
    ) {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        pm.write_through(PhysAddr::new(addr), &bytes);
        let after_first = pm.stats().media_line_writes;
        for _ in 0..repeats {
            pm.write_through(PhysAddr::new(addr), &bytes);
        }
        prop_assert_eq!(pm.stats().media_line_writes, after_first);
    }

    /// Coalescing never inflates media traffic: the number of media line
    /// programs for staged writes is bounded by the number of distinct
    /// 256 B lines touched.
    #[test]
    fn staged_media_writes_bounded_by_touched_lines(
        writes in prop::collection::vec((0u64..8192, 1usize..64), 1..80),
    ) {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        let mut lines = std::collections::HashSet::new();
        for (addr, len) in &writes {
            pm.write(PhysAddr::new(*addr), &vec![0xAB; *len]);
            for b in *addr..(*addr + *len as u64) {
                lines.insert(b / 256);
            }
        }
        pm.flush_all();
        prop_assert!(pm.stats().media_line_writes as usize <= lines.len());
    }
}
