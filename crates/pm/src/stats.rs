//! Write-traffic accounting for the PM device.

use std::fmt;
use std::ops::Sub;

/// A snapshot of PM traffic counters.
///
/// [`PmStats::media_line_writes`] is the paper Fig 11 metric ("the number of
/// write requests to the PM physical media"). Accepted-write counters split
/// by destination region let the figures distinguish log-region traffic
/// (pure logging overhead) from data-region traffic.
///
/// Snapshots subtract ([`Sub`]), so a per-phase delta is
/// `device.stats() - before`.
///
/// # Examples
///
/// ```
/// use silo_pm::PmStats;
///
/// let before = PmStats::default();
/// let after = PmStats { accepted_writes: 10, ..PmStats::default() };
/// assert_eq!((after - before).accepted_writes, 10);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PmStats {
    /// Write requests accepted by the DIMM (any size).
    pub accepted_writes: u64,
    /// Bytes across all accepted writes.
    pub accepted_bytes: u64,
    /// Accepted writes destined for the data region.
    pub data_region_writes: u64,
    /// Accepted writes destined for the log region.
    pub log_region_writes: u64,
    /// Line programs actually performed on the media (Fig 11 metric).
    pub media_line_writes: u64,
    /// Bits physically programmed (data-comparison-write granularity).
    pub media_bits_programmed: u64,
    /// Line programs fully suppressed by data-comparison-write.
    pub dcw_suppressed: u64,
    /// Writes that coalesced into an already-staged on-PM buffer line.
    pub coalesced_hits: u64,
    /// On-PM buffer line allocations.
    pub buffer_fills: u64,
    /// On-PM buffer drains forced by capacity pressure.
    pub buffer_forced_drains: u64,
    /// Read requests served.
    pub reads: u64,
}

impl PmStats {
    /// The counters as a JSON object (experiment reports).
    pub fn to_json(&self) -> silo_types::JsonValue {
        silo_types::JsonValue::object()
            .field("accepted_writes", self.accepted_writes)
            .field("accepted_bytes", self.accepted_bytes)
            .field("data_region_writes", self.data_region_writes)
            .field("log_region_writes", self.log_region_writes)
            .field("media_line_writes", self.media_line_writes)
            .field("media_bits_programmed", self.media_bits_programmed)
            .field("dcw_suppressed", self.dcw_suppressed)
            .field("coalesced_hits", self.coalesced_hits)
            .field("buffer_fills", self.buffer_fills)
            .field("buffer_forced_drains", self.buffer_forced_drains)
            .field("reads", self.reads)
            .build()
    }

    /// Rebuilds a snapshot from its [`PmStats::to_json`] form. `None` if
    /// any counter is missing or not an exact integer (the result store
    /// treats that as a corrupt entry and recomputes).
    pub fn from_json(v: &silo_types::JsonValue) -> Option<PmStats> {
        let u = |key: &str| v.get(key).and_then(silo_types::JsonValue::as_u64);
        Some(PmStats {
            accepted_writes: u("accepted_writes")?,
            accepted_bytes: u("accepted_bytes")?,
            data_region_writes: u("data_region_writes")?,
            log_region_writes: u("log_region_writes")?,
            media_line_writes: u("media_line_writes")?,
            media_bits_programmed: u("media_bits_programmed")?,
            dcw_suppressed: u("dcw_suppressed")?,
            coalesced_hits: u("coalesced_hits")?,
            buffer_fills: u("buffer_fills")?,
            buffer_forced_drains: u("buffer_forced_drains")?,
            reads: u("reads")?,
        })
    }
}

impl Sub for PmStats {
    type Output = PmStats;

    /// Saturating per-field difference: delta pairs are only approximately
    /// nested (workload streams need not be prefix-extensive), so each
    /// counter saturates at zero rather than panicking on underflow.
    fn sub(self, rhs: PmStats) -> PmStats {
        PmStats {
            accepted_writes: self.accepted_writes.saturating_sub(rhs.accepted_writes),
            accepted_bytes: self.accepted_bytes.saturating_sub(rhs.accepted_bytes),
            data_region_writes: self
                .data_region_writes
                .saturating_sub(rhs.data_region_writes),
            log_region_writes: self.log_region_writes.saturating_sub(rhs.log_region_writes),
            media_line_writes: self.media_line_writes.saturating_sub(rhs.media_line_writes),
            media_bits_programmed: self
                .media_bits_programmed
                .saturating_sub(rhs.media_bits_programmed),
            dcw_suppressed: self.dcw_suppressed.saturating_sub(rhs.dcw_suppressed),
            coalesced_hits: self.coalesced_hits.saturating_sub(rhs.coalesced_hits),
            buffer_fills: self.buffer_fills.saturating_sub(rhs.buffer_fills),
            buffer_forced_drains: self
                .buffer_forced_drains
                .saturating_sub(rhs.buffer_forced_drains),
            reads: self.reads.saturating_sub(rhs.reads),
        }
    }
}

impl fmt::Display for PmStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accepted {} writes ({} B; data {}, log {}), media {} line programs \
             ({} bits), dcw-suppressed {}, coalesced {}, reads {}",
            self.accepted_writes,
            self.accepted_bytes,
            self.data_region_writes,
            self.log_region_writes,
            self.media_line_writes,
            self.media_bits_programmed,
            self.dcw_suppressed,
            self.coalesced_hits,
            self.reads,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subtraction_is_fieldwise() {
        let a = PmStats {
            accepted_writes: 10,
            accepted_bytes: 80,
            media_line_writes: 3,
            reads: 7,
            ..PmStats::default()
        };
        let b = PmStats {
            accepted_writes: 4,
            accepted_bytes: 32,
            media_line_writes: 1,
            reads: 2,
            ..PmStats::default()
        };
        let d = a - b;
        assert_eq!(d.accepted_writes, 6);
        assert_eq!(d.accepted_bytes, 48);
        assert_eq!(d.media_line_writes, 2);
        assert_eq!(d.reads, 5);
    }

    #[test]
    fn display_is_nonempty() {
        let s = format!("{}", PmStats::default());
        assert!(s.contains("accepted 0 writes"));
    }
}
