//! Persistent-memory device model for the Silo simulator.
//!
//! This crate is the stand-in for the NVMain PCM model the paper evaluates
//! on (Table II: 16 GB phase-change memory, 50 / 150 ns read / write). It
//! models the two layers of the PM DIMM that the paper's write-traffic
//! results depend on:
//!
//! * [`Media`] — the physical PCM media. Writes land at on-PM-buffer-line
//!   granularity via read-modify-write, and a bit-level
//!   **data-comparison-write** scheme (paper §III-D, citing \[62\]) suppresses
//!   programs whose bits are unchanged — this is what makes a cacheline
//!   eviction after an in-place log update free.
//! * [`OnPmBuffer`] — the internal DIMM buffer (paper §III-E) with 256 B
//!   lines where 8 B new-data words, 64 B cachelines, and 18 B undo-log
//!   batch entries **coalesce** before reaching the media. All three
//!   coalescing cases of Fig 9 fall out of byte-masked staging.
//! * [`PmDevice`] — the composition of the two plus traffic accounting
//!   ([`PmStats`]), with an optional data/log region boundary so the figures
//!   can split traffic by destination.
//!
//! The evaluation metric of paper Fig 11 — "the number of write requests to
//! the PM physical media" — is [`PmStats::media_line_writes`].
//!
//! # Examples
//!
//! ```
//! use silo_pm::{PmDevice, PmDeviceConfig};
//! use silo_types::PhysAddr;
//!
//! let mut pm = PmDevice::new(PmDeviceConfig::default());
//! pm.write(PhysAddr::new(16), &7u64.to_le_bytes());  // W1 of Fig 9
//! pm.write(PhysAddr::new(24), &8u64.to_le_bytes());  // W2: same buffer line
//! assert_eq!(pm.read_u64(PhysAddr::new(16)), 7);
//! pm.flush_all();
//! // The two words shared one on-PM buffer line: a single media write.
//! assert_eq!(pm.stats().media_line_writes, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod fault;
mod media;
mod onpm_buffer;
mod stats;
mod wear;

pub use device::{PmDevice, PmDeviceConfig};
pub use fault::{DrainReport, EventCounters, EventKind, FaultModel};
pub use media::{Media, PagedMedia};
pub use onpm_buffer::{OnPmBuffer, DEFAULT_BUFFER_LINES};
pub use stats::PmStats;
pub use wear::{WearTracker, PCM_CELL_ENDURANCE};
