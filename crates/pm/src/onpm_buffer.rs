//! The internal DIMM write buffer where PM writes coalesce (paper §III-E).

use std::collections::VecDeque;

use silo_types::{FxHashMap, PhysAddr, BUF_LINE_BYTES};

use crate::{DrainReport, Media};

/// Default number of 256 B lines in the on-PM buffer.
///
/// The paper cites the on-DIMM buffering of real PM hardware (\[50\], \[55\],
/// \[58\]); Optane's XPBuffer is 16 KB, i.e. 64 lines of 256 B. We use that as
/// the default; the paper's results depend only on the buffer being large
/// enough to hold the write burst of a committing transaction.
pub const DEFAULT_BUFFER_LINES: usize = 64;

/// One staged buffer line: data bytes plus a per-byte valid mask.
#[derive(Clone)]
struct Staged {
    data: Box<[u8; BUF_LINE_BYTES]>,
    valid: Box<[bool; BUF_LINE_BYTES]>,
}

impl Staged {
    fn new() -> Self {
        Staged {
            data: Box::new([0u8; BUF_LINE_BYTES]),
            valid: Box::new([false; BUF_LINE_BYTES]),
        }
    }
}

impl std::fmt::Debug for Staged {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let valid = self.valid.iter().filter(|&&v| v).count();
        write!(f, "Staged({valid}/{BUF_LINE_BYTES} bytes valid)")
    }
}

/// The on-PM buffer: a small, ADR-protected staging area inside the PM DIMM
/// where incoming writes of any size coalesce into 256 B lines before being
/// programmed into the [`Media`] (paper §III-E, Fig 9).
///
/// All three coalescing cases of Fig 9 fall out of the byte-masked staging:
///
/// 1. **Overlapping words** (W1/W2/W3 sharing bytes): later bytes overwrite
///    earlier staged bytes in place — last write wins, order preserved.
/// 2. **Same line, disjoint words** (W4/W5): both land in one staged line
///    and cost a single media program.
/// 3. **Words sharing lines with cachelines** (W6): 8 B words and 64 B
///    cachelines stage into the same lines and drain together.
///
/// Capacity is bounded; allocating a new line when full drains the oldest
/// staged line (FIFO) to the media. Because the buffer sits in the ADR
/// domain, its contents survive a crash ("all the data will survive a crash
/// by using ADR", §III-E) — crash handling simply [flushes](Self::flush_all)
/// it.
///
/// # Examples
///
/// ```
/// use silo_pm::{Media, OnPmBuffer};
/// use silo_types::PhysAddr;
///
/// let mut media = Media::new();
/// let mut buf = OnPmBuffer::new(4);
/// buf.write(PhysAddr::new(400), &[1u8; 8], &mut media);  // W4 of Fig 9
/// buf.write(PhysAddr::new(408), &[2u8; 8], &mut media);  // W5: coalesces
/// buf.flush_all(&mut media);
/// assert_eq!(media.line_writes(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct OnPmBuffer {
    capacity: usize,
    lines: FxHashMap<u64, Staged>,
    fifo: VecDeque<u64>,
    coalesced_hits: u64,
    fills: u64,
    forced_drains: u64,
}

impl OnPmBuffer {
    /// Creates a buffer with `capacity` lines of 256 B.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "on-PM buffer needs at least one line");
        OnPmBuffer {
            capacity,
            lines: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
            fifo: VecDeque::with_capacity(capacity),
            coalesced_hits: 0,
            fills: 0,
            forced_drains: 0,
        }
    }

    /// Stages `bytes` at `addr`, splitting across buffer lines as needed.
    /// Capacity pressure drains the oldest staged line into `media`.
    pub fn write(&mut self, addr: PhysAddr, bytes: &[u8], media: &mut Media) {
        let mut cur = addr.as_u64();
        let mut rest = bytes;
        while !rest.is_empty() {
            let off = (cur % BUF_LINE_BYTES as u64) as usize;
            let chunk = rest.len().min(BUF_LINE_BYTES - off);
            self.write_within_line(PhysAddr::new(cur), &rest[..chunk], media);
            cur += chunk as u64;
            rest = &rest[chunk..];
        }
    }

    fn write_within_line(&mut self, addr: PhysAddr, bytes: &[u8], media: &mut Media) {
        let idx = addr.buf_line_index();
        let off = addr.offset_in_buf_line();
        debug_assert!(off + bytes.len() <= BUF_LINE_BYTES);
        if let Some(staged) = self.lines.get_mut(&idx) {
            staged.data[off..off + bytes.len()].copy_from_slice(bytes);
            staged.valid[off..off + bytes.len()].fill(true);
            self.coalesced_hits += 1;
            return;
        }
        if self.lines.len() == self.capacity {
            let oldest = self
                .fifo
                .pop_front()
                .expect("fifo tracks every staged line");
            self.drain_line(oldest, media);
            self.forced_drains += 1;
        }
        let mut staged = Staged::new();
        staged.data[off..off + bytes.len()].copy_from_slice(bytes);
        staged.valid[off..off + bytes.len()].fill(true);
        self.lines.insert(idx, staged);
        self.fifo.push_back(idx);
        self.fills += 1;
    }

    fn drain_line(&mut self, idx: u64, media: &mut Media) {
        let staged = self
            .lines
            .remove(&idx)
            .expect("fifo entries always have a staged line");
        let base = PhysAddr::new(idx * BUF_LINE_BYTES as u64);
        media.program_line(base, &staged.data, &staged.valid);
    }

    /// Drains every staged line to the media, oldest first. Used at the end
    /// of a simulation and when a crash triggers the ADR drain.
    pub fn flush_all(&mut self, media: &mut Media) {
        while let Some(idx) = self.fifo.pop_front() {
            self.drain_line(idx, media);
        }
        debug_assert!(self.lines.is_empty());
    }

    /// Stages `bytes` without enforcing capacity — no forced media drains.
    /// This is the battery-powered write path: after power loss the
    /// scheme's `on_crash` records land in the ADR domain first and are
    /// charged against the residual-energy budget once, when
    /// [`crash_drain`](Self::crash_drain) pushes them to the media.
    pub fn stage_unbounded(&mut self, addr: PhysAddr, bytes: &[u8]) {
        let mut cur = addr.as_u64();
        let mut rest = bytes;
        while !rest.is_empty() {
            let off = (cur % BUF_LINE_BYTES as u64) as usize;
            let chunk = rest.len().min(BUF_LINE_BYTES - off);
            let idx = cur / BUF_LINE_BYTES as u64;
            let staged = self.lines.entry(idx).or_insert_with(|| {
                self.fifo.push_back(idx);
                Staged::new()
            });
            staged.data[off..off + chunk].copy_from_slice(&rest[..chunk]);
            staged.valid[off..off + chunk].fill(true);
            cur += chunk as u64;
            rest = &rest[chunk..];
        }
    }

    /// The post-crash ADR drain under a [`FaultModel`](crate::FaultModel):
    /// drains staged lines FIFO-oldest-first, charging each line's valid
    /// bytes against the residual-energy `budget`. The line on which the
    /// budget dies persists a torn prefix; every younger staged line is
    /// lost. If `torn_keep` is set, the program that was in flight at the
    /// instant of power loss (the FIFO head) first tears to its leading
    /// `torn_keep` valid bytes — the ADR copy survives, so a sufficient
    /// budget re-programs it in full.
    ///
    /// The buffer is empty afterwards regardless of what persisted.
    pub fn crash_drain(
        &mut self,
        media: &mut Media,
        budget: u64,
        torn_keep: Option<usize>,
    ) -> DrainReport {
        let mut report = DrainReport::default();
        if let Some(keep) = torn_keep {
            if let Some(head) = self.fifo.front() {
                let staged = &self.lines[head];
                let valid_count = staged.valid.iter().filter(|&&v| v).count();
                if valid_count > keep {
                    let mask = truncate_mask(&staged.valid, keep);
                    let base = PhysAddr::new(head * BUF_LINE_BYTES as u64);
                    media.program_line(base, &staged.data, &mask);
                    report.torn_lines += 1;
                }
            }
        }
        let mut remaining = budget;
        while let Some(idx) = self.fifo.pop_front() {
            let staged = self
                .lines
                .remove(&idx)
                .expect("fifo entries always have a staged line");
            let valid_count = staged.valid.iter().filter(|&&v| v).count() as u64;
            let base = PhysAddr::new(idx * BUF_LINE_BYTES as u64);
            if valid_count <= remaining {
                media.program_line(base, &staged.data, &staged.valid);
                remaining -= valid_count;
                report.drained_lines += 1;
                report.drained_bytes += valid_count;
            } else if remaining > 0 {
                // The budget dies mid-program: a torn partial line.
                let mask = truncate_mask(&staged.valid, remaining as usize);
                media.program_line(base, &staged.data, &mask);
                report.torn_lines += 1;
                report.drained_bytes += remaining;
                report.discarded_bytes += valid_count - remaining;
                remaining = 0;
            } else {
                report.discarded_lines += 1;
                report.discarded_bytes += valid_count;
            }
        }
        debug_assert!(self.lines.is_empty());
        report
    }

    /// Reads `len` bytes at `addr`, with staged bytes overriding the media —
    /// the DIMM-internal read path sees buffered data.
    pub fn read_through(&self, addr: PhysAddr, len: usize, media: &Media) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.read_through_into(addr, &mut out, media);
        out
    }

    /// [`read_through`](Self::read_through) into a caller-provided buffer —
    /// the allocation-free word-read path of the engine's hot loop. Staged
    /// lines are looked up once per buffer line covered, not per byte.
    pub fn read_through_into(&self, addr: PhysAddr, out: &mut [u8], media: &Media) {
        media.read_into(addr, out);
        if self.lines.is_empty() {
            return;
        }
        let mut cur = addr.as_u64();
        let mut pos = 0;
        while pos < out.len() {
            let off = (cur % BUF_LINE_BYTES as u64) as usize;
            let chunk = (out.len() - pos).min(BUF_LINE_BYTES - off);
            if let Some(staged) = self.lines.get(&(cur / BUF_LINE_BYTES as u64)) {
                for i in 0..chunk {
                    if staged.valid[off + i] {
                        out[pos + i] = staged.data[off + i];
                    }
                }
            }
            cur += chunk as u64;
            pos += chunk;
        }
    }

    /// Updates any staged copy of the written bytes *without* allocating
    /// new lines — used by the write-through path to keep a staged line
    /// coherent with bytes that bypassed the buffer. Returns how many bytes
    /// were patched into staged lines.
    pub fn patch_if_staged(&mut self, addr: PhysAddr, bytes: &[u8]) -> usize {
        let mut patched = 0;
        for (i, &b) in bytes.iter().enumerate() {
            let a = addr.as_u64() + i as u64;
            let idx = a / BUF_LINE_BYTES as u64;
            if let Some(staged) = self.lines.get_mut(&idx) {
                let off = (a % BUF_LINE_BYTES as u64) as usize;
                staged.data[off] = b;
                staged.valid[off] = true;
                patched += 1;
            }
        }
        patched
    }

    /// Number of writes that hit an already-staged line (Fig 9 coalescing).
    pub fn coalesced_hits(&self) -> u64 {
        self.coalesced_hits
    }

    /// Number of line allocations.
    pub fn fills(&self) -> u64 {
        self.fills
    }

    /// Number of drains forced by capacity pressure.
    pub fn forced_drains(&self) -> u64 {
        self.forced_drains
    }

    /// Number of lines currently staged.
    pub fn occupancy(&self) -> usize {
        self.lines.len()
    }

    /// The configured capacity in lines.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// A copy of `valid` keeping only the first `keep` set bytes — the
/// persisted prefix of a torn line program.
fn truncate_mask(valid: &[bool; BUF_LINE_BYTES], keep: usize) -> [bool; BUF_LINE_BYTES] {
    let mut mask = *valid;
    let mut kept = 0;
    for m in mask.iter_mut() {
        if *m {
            if kept < keep {
                kept += 1;
            } else {
                *m = false;
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Media, OnPmBuffer) {
        (Media::new(), OnPmBuffer::new(4))
    }

    #[test]
    fn fig9_case1_overlapping_words_coalesce_last_write_wins() {
        // W1 (addr 16), W2 (addr 24), W3 (addr 20) — W3 overlaps both.
        let (mut media, mut buf) = setup();
        buf.write(PhysAddr::new(16), &[0x11; 8], &mut media);
        buf.write(PhysAddr::new(24), &[0x22; 8], &mut media);
        buf.write(PhysAddr::new(20), &[0x33; 8], &mut media);
        buf.flush_all(&mut media);
        assert_eq!(media.line_writes(), 1, "one media program for the line");
        assert_eq!(media.read(PhysAddr::new(16), 4), vec![0x11; 4]);
        assert_eq!(media.read(PhysAddr::new(20), 8), vec![0x33; 8]);
        assert_eq!(media.read(PhysAddr::new(28), 4), vec![0x22; 4]);
    }

    #[test]
    fn fig9_case2_disjoint_words_share_one_program() {
        let (mut media, mut buf) = setup();
        buf.write(PhysAddr::new(400), &[4; 8], &mut media);
        buf.write(PhysAddr::new(410), &[5; 8], &mut media);
        buf.flush_all(&mut media);
        assert_eq!(media.line_writes(), 1);
        assert_eq!(buf.coalesced_hits(), 1);
    }

    #[test]
    fn fig9_case3_word_coalesces_with_cacheline() {
        let (mut media, mut buf) = setup();
        // 64B cacheline eviction at 512, then an 8B word at 576+8 lands in a
        // *different* line; a word at 520 lands in the same line.
        buf.write(PhysAddr::new(512), &[7u8; 64], &mut media);
        buf.write(PhysAddr::new(600), &[8u8; 8], &mut media);
        buf.write(PhysAddr::new(520), &[9u8; 8], &mut media);
        buf.flush_all(&mut media);
        // 512..768 is one buffer line (index 2); 600 is in the same 256B
        // line. So everything coalesced to one line program.
        assert_eq!(media.line_writes(), 1);
        assert_eq!(media.read(PhysAddr::new(520), 8), vec![9u8; 8]);
        assert_eq!(media.read(PhysAddr::new(528), 8), vec![7u8; 8]);
    }

    #[test]
    fn writes_crossing_buffer_lines_split() {
        let (mut media, mut buf) = setup();
        buf.write(PhysAddr::new(250), &[1u8; 12], &mut media);
        buf.flush_all(&mut media);
        assert_eq!(media.line_writes(), 2);
        assert_eq!(media.read(PhysAddr::new(250), 12), vec![1u8; 12]);
    }

    #[test]
    fn capacity_pressure_drains_fifo_order() {
        let (mut media, mut buf) = setup();
        for i in 0..5u64 {
            buf.write(PhysAddr::new(i * 256), &[i as u8 + 1; 8], &mut media);
        }
        // Capacity 4: staging the 5th line drained the 1st.
        assert_eq!(buf.forced_drains(), 1);
        assert_eq!(media.line_writes(), 1);
        assert_eq!(media.read(PhysAddr::new(0), 1), vec![1]);
        assert_eq!(buf.occupancy(), 4);
    }

    #[test]
    fn read_through_sees_staged_bytes() {
        let (mut media, mut buf) = setup();
        media.write_masked(PhysAddr::new(0), &[1, 2, 3, 4], 0);
        buf.write(PhysAddr::new(1), &[9, 9], &mut media);
        assert_eq!(
            buf.read_through(PhysAddr::new(0), 4, &media),
            vec![1, 9, 9, 4]
        );
    }

    #[test]
    fn flush_all_empties_buffer_and_persists() {
        let (mut media, mut buf) = setup();
        buf.write(PhysAddr::new(0), &[5; 8], &mut media);
        buf.write(PhysAddr::new(256), &[6; 8], &mut media);
        buf.flush_all(&mut media);
        assert_eq!(buf.occupancy(), 0);
        assert_eq!(media.read(PhysAddr::new(0), 8), vec![5; 8]);
        assert_eq!(media.read(PhysAddr::new(256), 8), vec![6; 8]);
    }

    #[test]
    fn flush_all_on_empty_buffer_is_noop() {
        let (mut media, mut buf) = setup();
        buf.flush_all(&mut media);
        assert_eq!(media.line_writes(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn zero_capacity_rejected() {
        let _ = OnPmBuffer::new(0);
    }

    #[test]
    fn stage_unbounded_ignores_capacity() {
        let (mut media, mut buf) = setup();
        for i in 0..8u64 {
            buf.stage_unbounded(PhysAddr::new(i * 256), &[i as u8 + 1; 8]);
        }
        assert_eq!(buf.occupancy(), 8, "no capacity drains");
        assert_eq!(media.line_writes(), 0);
        buf.flush_all(&mut media);
        assert_eq!(media.line_writes(), 8);
        assert_eq!(media.read(PhysAddr::new(7 * 256), 1), vec![8]);
    }

    #[test]
    fn crash_drain_with_ample_budget_equals_flush() {
        let (mut media, mut buf) = setup();
        buf.write(PhysAddr::new(0), &[1; 8], &mut media);
        buf.write(PhysAddr::new(256), &[2; 8], &mut media);
        let report = buf.crash_drain(&mut media, u64::MAX, None);
        assert_eq!(report.drained_lines, 2);
        assert_eq!(report.drained_bytes, 16);
        assert_eq!(report.torn_lines, 0);
        assert_eq!(report.discarded_lines, 0);
        assert_eq!(buf.occupancy(), 0);
        assert_eq!(media.read(PhysAddr::new(256), 8), vec![2; 8]);
    }

    #[test]
    fn crash_drain_budget_discards_younger_lines() {
        let (mut media, mut buf) = setup();
        buf.write(PhysAddr::new(0), &[1; 8], &mut media);
        buf.write(PhysAddr::new(256), &[2; 8], &mut media);
        buf.write(PhysAddr::new(512), &[3; 8], &mut media);
        // 8-byte budget: oldest line drains, the rest is lost.
        let report = buf.crash_drain(&mut media, 8, None);
        assert_eq!(report.drained_lines, 1);
        assert_eq!(report.discarded_lines, 2);
        assert_eq!(report.discarded_bytes, 16);
        assert_eq!(buf.occupancy(), 0);
        assert_eq!(media.read(PhysAddr::new(0), 8), vec![1; 8]);
        assert_eq!(media.read(PhysAddr::new(256), 8), vec![0; 8], "lost");
    }

    #[test]
    fn crash_drain_partial_budget_tears_a_line() {
        let (mut media, mut buf) = setup();
        buf.write(PhysAddr::new(0), &[7; 16], &mut media);
        let report = buf.crash_drain(&mut media, 5, None);
        assert_eq!(report.torn_lines, 1);
        assert_eq!(report.drained_bytes, 5);
        assert_eq!(report.discarded_bytes, 11);
        assert_eq!(media.read(PhysAddr::new(0), 16), {
            let mut v = vec![7u8; 5];
            v.extend_from_slice(&[0; 11]);
            v
        });
    }

    #[test]
    fn torn_head_is_repaired_by_a_full_drain() {
        let (mut media, mut buf) = setup();
        buf.write(PhysAddr::new(0), &[9; 64], &mut media);
        // The in-flight program tears to 4 bytes, but the ADR copy
        // survives and the unlimited budget re-programs it in full.
        let report = buf.crash_drain(&mut media, u64::MAX, Some(4));
        assert_eq!(report.torn_lines, 1);
        assert_eq!(report.drained_lines, 1);
        assert_eq!(media.read(PhysAddr::new(0), 64), vec![9; 64]);
    }

    #[test]
    fn torn_head_with_zero_budget_loses_the_suffix() {
        let (mut media, mut buf) = setup();
        buf.write(PhysAddr::new(0), &[9; 64], &mut media);
        let report = buf.crash_drain(&mut media, 0, Some(4));
        assert_eq!(report.torn_lines, 1);
        assert_eq!(report.discarded_lines, 1);
        assert_eq!(media.read(PhysAddr::new(0), 4), vec![9; 4]);
        assert_eq!(media.read(PhysAddr::new(4), 60), vec![0; 60]);
    }

    #[test]
    fn undo_log_batch_fills_one_line() {
        // §III-F: 14 log entries × 18 B = 252 B fit one buffer line, so an
        // overflow batch costs a single media program.
        let (mut media, mut buf) = setup();
        let batch = vec![0xabu8; 14 * 18];
        buf.write(PhysAddr::new(1024), &batch, &mut media);
        buf.flush_all(&mut media);
        assert_eq!(media.line_writes(), 1);
    }
}
