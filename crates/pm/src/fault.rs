//! Fault models for crash injection: what the PM device does — and fails
//! to do — in the instants after power is cut.
//!
//! The ideal crash model ("perfect ADR") assumes the on-PM buffer drains
//! completely and every in-flight line program completes. Real hardware is
//! weaker on both counts: the residual-energy budget bounds how many bytes
//! the ADR domain can push to the media (the paper's Table IV battery
//! sizing), and a line program interrupted mid-pulse persists only a prefix
//! of its byte mask (a *torn* line). [`FaultModel`] makes both knobs
//! explicit so crash sweeps can explore the full failure surface instead of
//! assuming the best case.

/// A durability-relevant event the device counts while power is on.
///
/// Event-indexed crash points (`PmDevice::arm_crash_at_event`) trip power
/// at the N-th event, enumerating the crash surface densely: every store,
/// every log drain, every WPQ admission, every media line program and every
/// recovery step is a distinct instant a sweep can cut power at.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A core retired a transactional store.
    Store,
    /// A write request was admitted to a memory-controller WPQ.
    WpqAdmit,
    /// A log-buffer drain wrote records into the PM log region.
    LogDrain,
    /// The media programmed a 256 B line.
    LineProgram,
    /// A recovery-time PM write (replay or revoke) was applied.
    RecoveryStep,
}

/// Per-kind tallies of the durability events seen so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventCounters {
    /// Retired transactional stores.
    pub stores: u64,
    /// WPQ admissions.
    pub wpq_admits: u64,
    /// Log-buffer drains into the log region.
    pub log_drains: u64,
    /// Media line programs.
    pub line_programs: u64,
    /// Recovery-time writes.
    pub recovery_steps: u64,
}

impl EventCounters {
    /// Total events across all kinds — the index space of event-indexed
    /// crash points.
    pub fn total(&self) -> u64 {
        self.stores + self.wpq_admits + self.log_drains + self.line_programs + self.recovery_steps
    }

    /// Bumps the counter for `kind`.
    pub(crate) fn bump(&mut self, kind: EventKind) {
        match kind {
            EventKind::Store => self.stores += 1,
            EventKind::WpqAdmit => self.wpq_admits += 1,
            EventKind::LogDrain => self.log_drains += 1,
            EventKind::LineProgram => self.line_programs += 1,
            EventKind::RecoveryStep => self.recovery_steps += 1,
        }
    }
}

/// What the ADR domain manages to persist between power loss and the
/// media going dark.
///
/// The two knobs compose: a bounded battery with a torn head line models a
/// crash that interrupts an in-flight line program *and* leaves too little
/// energy to drain the rest of the buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultModel {
    /// Bytes of staged/`on_crash` data the residual-energy budget can push
    /// to the media after power loss (Table IV battery sizing). `None`
    /// models a perfectly sized battery: everything drains.
    pub battery_budget_bytes: Option<u64>,
    /// If set, the line program in flight at power loss tears: only the
    /// first `keep` valid bytes of the oldest staged line persist from the
    /// interrupted pulse. The ADR copy of the line survives, so a
    /// sufficient battery re-programs it completely; tearing is only
    /// observable when the budget runs out first.
    pub torn_line_keep_bytes: Option<usize>,
}

impl FaultModel {
    /// The ideal model: the full buffer drains, no program tears.
    pub fn perfect_adr() -> Self {
        FaultModel {
            battery_budget_bytes: None,
            torn_line_keep_bytes: None,
        }
    }

    /// A torn in-flight line program persisting only its first `keep`
    /// valid bytes (with an otherwise perfect battery).
    pub fn torn_line(keep: usize) -> Self {
        FaultModel {
            battery_budget_bytes: None,
            torn_line_keep_bytes: Some(keep),
        }
    }

    /// A bounded residual-energy budget of `bytes` for the post-crash
    /// drain (no tearing).
    pub fn bounded_battery(bytes: u64) -> Self {
        FaultModel {
            battery_budget_bytes: Some(bytes),
            torn_line_keep_bytes: None,
        }
    }

    /// Adds a torn in-flight line program to this model.
    pub fn with_torn_line(mut self, keep: usize) -> Self {
        self.torn_line_keep_bytes = Some(keep);
        self
    }

    /// Adds a bounded battery budget to this model.
    pub fn with_battery_budget(mut self, bytes: u64) -> Self {
        self.battery_budget_bytes = Some(bytes);
        self
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::perfect_adr()
    }
}

/// What a post-crash battery drain accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Staged lines fully programmed to the media.
    pub drained_lines: u64,
    /// Valid bytes those programs carried.
    pub drained_bytes: u64,
    /// Line programs that tore (persisted a strict prefix of their mask).
    pub torn_lines: u64,
    /// Staged lines lost entirely when the budget ran out.
    pub discarded_lines: u64,
    /// Valid bytes those lost lines held.
    pub discarded_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_total_sums_kinds() {
        let mut c = EventCounters::default();
        c.bump(EventKind::Store);
        c.bump(EventKind::Store);
        c.bump(EventKind::WpqAdmit);
        c.bump(EventKind::LogDrain);
        c.bump(EventKind::LineProgram);
        c.bump(EventKind::RecoveryStep);
        assert_eq!(c.stores, 2);
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn constructors_compose() {
        let m = FaultModel::bounded_battery(512).with_torn_line(17);
        assert_eq!(m.battery_budget_bytes, Some(512));
        assert_eq!(m.torn_line_keep_bytes, Some(17));
        assert_eq!(FaultModel::default(), FaultModel::perfect_adr());
        assert_eq!(FaultModel::torn_line(3).torn_line_keep_bytes, Some(3));
    }
}
