//! The physical PCM media with bit-level data-comparison-write accounting.
//!
//! Storage follows the flat paged-image model of the NVMain lineage this
//! simulator replaces: a page table of 4 KiB slabs instead of a
//! general-purpose hash table per 256 B line. Pages are held in [`Arc`], so
//! cloning the media (the engine's `RunOutcome::pm` snapshot, crashfuzz's
//! per-crash-point images) is copy-on-write — the clone costs one page-table
//! copy and refcount bumps, and only pages written *after* the snapshot are
//! ever duplicated.

use std::sync::Arc;

use silo_types::{FxHashMap, PhysAddr, BUF_LINE_BYTES};

use crate::WearTracker;

/// Bytes per media page (one page-table slab).
const PAGE_BYTES: usize = 4096;

/// Buffer lines per page. Must match the width of [`Page::touched`].
const LINES_PER_PAGE: usize = PAGE_BYTES / BUF_LINE_BYTES;

/// One 4 KiB slab of media plus a per-buffer-line materialization bitmap
/// (`LINES_PER_PAGE` == 16 bits). The bitmap preserves the reference
/// `HashMap`-media notion of a "touched" line — lines count toward the
/// footprint as soon as any write (even a fully DCW-suppressed one) or
/// crash-time revert addresses them.
#[derive(Clone, Debug)]
struct Page {
    data: Box<[u8; PAGE_BYTES]>,
    touched: u16,
}

impl Page {
    fn zeroed() -> Self {
        Page {
            data: Box::new([0u8; PAGE_BYTES]),
            touched: 0,
        }
    }
}

/// The phase-change-memory physical media.
///
/// Storage is sparse: only 4 KiB pages that have ever been programmed are
/// materialized, so a 16 GB address space (paper Table II) costs memory
/// proportional to the touched footprint.
///
/// Writes arrive from the [on-PM buffer](crate::OnPmBuffer) at buffer-line
/// granularity with a per-byte valid mask (read-modify-write, paper §III-E).
/// A **data-comparison-write** check (paper \[62\]) compares the incoming
/// bytes with the stored ones: if no bit changes, the media is not
/// programmed at all and the write is not counted — the mechanism Silo
/// relies on to make post-commit cacheline evictions free (§III-D, CE/IPU
/// timing scenario 3). The comparison runs against the shared page, so a
/// suppressed write never triggers a copy-on-write page duplication.
///
/// # Examples
///
/// ```
/// use silo_pm::Media;
/// use silo_types::PhysAddr;
///
/// let mut m = Media::new();
/// let wrote = m.write_masked(PhysAddr::new(0), &[1, 2, 3], 0);
/// assert!(wrote);
/// // Re-writing identical bytes is suppressed by data-comparison-write.
/// assert!(!m.write_masked(PhysAddr::new(0), &[1, 2, 3], 0));
/// assert_eq!(m.read(PhysAddr::new(1), 2), vec![2, 3]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PagedMedia {
    pages: FxHashMap<u64, Arc<Page>>,
    touched_count: usize,
    line_writes: u64,
    bits_programmed: u64,
    dcw_suppressed: u64,
    wear: WearTracker,
}

/// The media type the rest of the simulator names; today it is the paged,
/// copy-on-write [`PagedMedia`].
pub type Media = PagedMedia;

#[inline]
fn split_line(line_idx: u64) -> (u64, usize) {
    (
        line_idx / LINES_PER_PAGE as u64,
        (line_idx % LINES_PER_PAGE as u64) as usize,
    )
}

impl PagedMedia {
    /// Creates empty (all-zero) media.
    pub fn new() -> Self {
        PagedMedia::default()
    }

    /// The stored bytes of one buffer line, if its page is materialized.
    /// Untouched lines within a materialized page read as zero, which is
    /// also what an absent page denotes — callers may treat `None` as a
    /// zero line.
    #[inline]
    fn peek_line(&self, line_idx: u64) -> Option<&[u8]> {
        let (page_idx, slot) = split_line(line_idx);
        self.pages
            .get(&page_idx)
            .map(|p| &p.data[slot * BUF_LINE_BYTES..(slot + 1) * BUF_LINE_BYTES])
    }

    /// Mutable access to one buffer line, materializing (and, under a live
    /// snapshot, copy-on-write-duplicating) its page and marking the line
    /// touched.
    #[inline]
    fn line_slab(&mut self, line_idx: u64) -> &mut [u8] {
        let (page_idx, slot) = split_line(line_idx);
        let entry = self
            .pages
            .entry(page_idx)
            .or_insert_with(|| Arc::new(Page::zeroed()));
        let page = Arc::make_mut(entry);
        let bit = 1u16 << slot;
        if page.touched & bit == 0 {
            page.touched |= bit;
            self.touched_count += 1;
        }
        &mut page.data[slot * BUF_LINE_BYTES..(slot + 1) * BUF_LINE_BYTES]
    }

    /// Marks a line materialized without writing — the footprint side
    /// effect of a fully DCW-suppressed write. Skips the copy-on-write
    /// duplication when the bit is already set.
    fn touch(&mut self, line_idx: u64) {
        let (page_idx, slot) = split_line(line_idx);
        let bit = 1u16 << slot;
        if let Some(p) = self.pages.get(&page_idx) {
            if p.touched & bit != 0 {
                return;
            }
        }
        let entry = self
            .pages
            .entry(page_idx)
            .or_insert_with(|| Arc::new(Page::zeroed()));
        Arc::make_mut(entry).touched |= bit;
        self.touched_count += 1;
    }

    /// Programs `bytes` starting at the byte address `base + offset`,
    /// where `base` must be buffer-line aligned when `offset` is the offset
    /// within that line. Returns `true` if the media was actually programmed
    /// (at least one bit changed), `false` if data-comparison-write
    /// suppressed it.
    ///
    /// The write must not cross a buffer-line boundary — the on-PM buffer
    /// splits larger writes before they reach the media.
    ///
    /// # Panics
    ///
    /// Panics if `offset + bytes.len()` exceeds the buffer-line size.
    pub fn write_masked(&mut self, line_base: PhysAddr, bytes: &[u8], offset: usize) -> bool {
        assert!(
            offset + bytes.len() <= BUF_LINE_BYTES,
            "media write crosses a buffer-line boundary: offset {offset} + len {}",
            bytes.len()
        );
        let line_idx = line_base.buf_line_index();
        let changed_bits: u64 = match self.peek_line(line_idx) {
            Some(stored) => stored[offset..offset + bytes.len()]
                .iter()
                .zip(bytes)
                .map(|(old, new)| (old ^ new).count_ones() as u64)
                .sum(),
            None => bytes.iter().map(|b| b.count_ones() as u64).sum(),
        };
        if changed_bits == 0 {
            self.dcw_suppressed += 1;
            self.touch(line_idx);
            return false;
        }
        let slab = self.line_slab(line_idx);
        slab[offset..offset + bytes.len()].copy_from_slice(bytes);
        self.line_writes += 1;
        self.bits_programmed += changed_bits;
        self.wear.record_program(line_idx);
        true
    }

    /// Programs one full buffer line in a single read-modify-write cycle,
    /// applying only the bytes flagged in `valid`. Returns `true` if the
    /// media was programmed (any valid byte changed any bit); a fully
    /// unchanged program is suppressed by data-comparison-write and counts
    /// nothing.
    ///
    /// This is the path the [on-PM buffer](crate::OnPmBuffer) uses when it
    /// drains a staged line: however many words, cachelines, and log-batch
    /// fragments coalesced into the line, the media sees **one** program —
    /// the write-amplification reduction of paper §III-E.
    ///
    /// # Panics
    ///
    /// Panics if `line_base` is not buffer-line aligned.
    pub fn program_line(
        &mut self,
        line_base: PhysAddr,
        data: &[u8; BUF_LINE_BYTES],
        valid: &[bool; BUF_LINE_BYTES],
    ) -> bool {
        assert_eq!(
            line_base.buf_line_aligned(),
            line_base,
            "program_line requires a buffer-line-aligned base"
        );
        let line_idx = line_base.buf_line_index();
        let mut changed_bits = 0u64;
        match self.peek_line(line_idx) {
            Some(stored) => {
                for i in 0..BUF_LINE_BYTES {
                    if valid[i] {
                        changed_bits += (stored[i] ^ data[i]).count_ones() as u64;
                    }
                }
            }
            None => {
                for i in 0..BUF_LINE_BYTES {
                    if valid[i] {
                        changed_bits += data[i].count_ones() as u64;
                    }
                }
            }
        }
        if changed_bits == 0 {
            self.dcw_suppressed += 1;
            self.touch(line_idx);
            return false;
        }
        let slab = self.line_slab(line_idx);
        for i in 0..BUF_LINE_BYTES {
            if valid[i] {
                slab[i] = data[i];
            }
        }
        self.line_writes += 1;
        self.bits_programmed += changed_bits;
        self.wear.record_program(line_idx);
        true
    }

    /// Reverts stored bytes without a program cycle: the crash-time
    /// rollback of writes whose persistence-domain tags were invalidated
    /// (e.g. LAD's MC buffer discarding an uncommitted transaction's
    /// prepared lines). Counts no line write, no programmed bits, no wear:
    /// the cells were already programmed once when the write was modeled
    /// eagerly; this only corrects which image is architecturally valid.
    /// May cross buffer-line boundaries.
    pub fn revert(&mut self, addr: PhysAddr, bytes: &[u8]) {
        let mut cur = addr.as_u64();
        let mut rest = bytes;
        while !rest.is_empty() {
            let off = (cur % BUF_LINE_BYTES as u64) as usize;
            let chunk = rest.len().min(BUF_LINE_BYTES - off);
            let slab = self.line_slab(cur / BUF_LINE_BYTES as u64);
            slab[off..off + chunk].copy_from_slice(&rest[..chunk]);
            cur += chunk as u64;
            rest = &rest[chunk..];
        }
    }

    /// Reads bytes starting at `addr` into `out`, without allocating.
    /// Unprogrammed media reads as zero. Reads may cross buffer-line (and
    /// page) boundaries.
    pub fn read_into(&self, addr: PhysAddr, out: &mut [u8]) {
        let mut cur = addr.as_u64();
        let mut pos = 0;
        while pos < out.len() {
            let off = (cur % PAGE_BYTES as u64) as usize;
            let chunk = (out.len() - pos).min(PAGE_BYTES - off);
            match self.pages.get(&(cur / PAGE_BYTES as u64)) {
                Some(p) => out[pos..pos + chunk].copy_from_slice(&p.data[off..off + chunk]),
                None => out[pos..pos + chunk].fill(0),
            }
            cur += chunk as u64;
            pos += chunk;
        }
    }

    /// Reads `len` bytes starting at `addr`. Unprogrammed media reads as
    /// zero. Reads may cross buffer-line boundaries.
    pub fn read(&self, addr: PhysAddr, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.read_into(addr, &mut out);
        out
    }

    /// Reads one little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: PhysAddr) -> u64 {
        let a = addr.as_u64();
        let off = (a % PAGE_BYTES as u64) as usize;
        if off + 8 <= PAGE_BYTES {
            match self.pages.get(&(a / PAGE_BYTES as u64)) {
                Some(p) => u64::from_le_bytes(p.data[off..off + 8].try_into().expect("8 bytes")),
                None => 0,
            }
        } else {
            let mut b = [0u8; 8];
            self.read_into(addr, &mut b);
            u64::from_le_bytes(b)
        }
    }

    /// Number of media line programs performed (the paper Fig 11 metric).
    pub fn line_writes(&self) -> u64 {
        self.line_writes
    }

    /// Total bits actually programmed across all writes.
    pub fn bits_programmed(&self) -> u64 {
        self.bits_programmed
    }

    /// Number of writes fully suppressed by data-comparison-write.
    pub fn dcw_suppressed(&self) -> u64 {
        self.dcw_suppressed
    }

    /// Number of distinct buffer lines ever materialized (footprint).
    pub fn touched_lines(&self) -> usize {
        self.touched_count
    }

    /// Number of materialized 4 KiB pages (page-table size).
    pub fn touched_pages(&self) -> usize {
        self.pages.len()
    }

    /// Per-line wear counters (endurance analysis).
    pub fn wear(&self) -> &WearTracker {
        &self.wear
    }

    /// How many pages are currently shared with at least one snapshot
    /// (clone) — i.e. would be duplicated by the next write to them.
    #[cfg(test)]
    fn shared_pages(&self) -> usize {
        self.pages
            .values()
            .filter(|p| Arc::strong_count(p) > 1)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_media_reads_zero() {
        let m = Media::new();
        assert_eq!(m.read(PhysAddr::new(12345), 4), vec![0, 0, 0, 0]);
        assert_eq!(m.read_u64(PhysAddr::new(0)), 0);
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut m = Media::new();
        m.write_masked(PhysAddr::new(512), &[9, 8, 7, 6], 10);
        assert_eq!(m.read(PhysAddr::new(522), 4), vec![9, 8, 7, 6]);
    }

    #[test]
    fn dcw_suppresses_identical_writes() {
        let mut m = Media::new();
        assert!(m.write_masked(PhysAddr::new(0), &[1, 1], 0));
        assert!(!m.write_masked(PhysAddr::new(0), &[1, 1], 0));
        assert_eq!(m.line_writes(), 1);
        assert_eq!(m.dcw_suppressed(), 1);
    }

    #[test]
    fn dcw_counts_only_changed_bits() {
        let mut m = Media::new();
        m.write_masked(PhysAddr::new(0), &[0b0000_0001], 0);
        assert_eq!(m.bits_programmed(), 1);
        m.write_masked(PhysAddr::new(0), &[0b0000_0011], 0);
        assert_eq!(m.bits_programmed(), 2); // only one new bit flipped
    }

    #[test]
    fn writing_zeros_to_fresh_media_is_suppressed() {
        // Fresh media is all-zero, so a zero write changes no bits.
        let mut m = Media::new();
        assert!(!m.write_masked(PhysAddr::new(64), &[0, 0, 0], 0));
        assert_eq!(m.line_writes(), 0);
    }

    #[test]
    fn reads_cross_buffer_line_boundaries() {
        let mut m = Media::new();
        m.write_masked(PhysAddr::new(0), &[0xaa], 255); // last byte of line 0
        m.write_masked(PhysAddr::new(256), &[0xbb], 0); // first byte of line 1
        assert_eq!(m.read(PhysAddr::new(255), 2), vec![0xaa, 0xbb]);
    }

    #[test]
    fn reads_cross_page_boundaries() {
        let mut m = Media::new();
        m.write_masked(PhysAddr::new(4095), &[0xcc], 255); // last byte of page 0
        m.write_masked(PhysAddr::new(4096), &[0xdd], 0); // first byte of page 1
        assert_eq!(m.read(PhysAddr::new(4095), 2), vec![0xcc, 0xdd]);
        assert_eq!(m.touched_pages(), 2);
        // read_u64 straddling the page boundary takes the slow path.
        let mut expect = [0u8; 8];
        expect[3] = 0xcc;
        expect[4] = 0xdd;
        assert_eq!(m.read_u64(PhysAddr::new(4092)), u64::from_le_bytes(expect));
    }

    #[test]
    #[should_panic(expected = "crosses a buffer-line boundary")]
    fn writes_may_not_cross_buffer_lines() {
        let mut m = Media::new();
        m.write_masked(PhysAddr::new(0), &[1, 2], 255);
    }

    #[test]
    fn footprint_is_sparse() {
        let mut m = Media::new();
        m.write_masked(PhysAddr::new(0), &[1], 0);
        m.write_masked(PhysAddr::new(1 << 30), &[1], 0);
        assert_eq!(m.touched_lines(), 2);
    }

    #[test]
    fn suppressed_writes_still_materialize_the_line() {
        // Footprint parity with the reference HashMap media: a fully
        // DCW-suppressed write still counts the line as touched.
        let mut m = Media::new();
        assert!(!m.write_masked(PhysAddr::new(0), &[0, 0], 0));
        assert_eq!(m.touched_lines(), 1);
        assert_eq!(m.touched_pages(), 1);
    }

    #[test]
    fn program_line_counts_one_write_for_many_fragments() {
        let mut m = Media::new();
        let mut data = [0u8; BUF_LINE_BYTES];
        let mut valid = [false; BUF_LINE_BYTES];
        // Three disjoint fragments (two words and a half-cacheline) in one
        // staged line...
        for i in 0..8 {
            data[i] = 0x11;
            valid[i] = true;
        }
        for i in 16..24 {
            data[i] = 0x22;
            valid[i] = true;
        }
        for i in 128..160 {
            data[i] = 0x33;
            valid[i] = true;
        }
        // ...cost exactly one media line write.
        assert!(m.program_line(PhysAddr::new(0), &data, &valid));
        assert_eq!(m.line_writes(), 1);
        assert_eq!(m.read(PhysAddr::new(16), 8), vec![0x22; 8]);
        // Invalid bytes were not touched.
        assert_eq!(m.read(PhysAddr::new(8), 8), vec![0; 8]);
    }

    #[test]
    fn program_line_identical_content_suppressed() {
        let mut m = Media::new();
        let mut data = [0u8; BUF_LINE_BYTES];
        let mut valid = [false; BUF_LINE_BYTES];
        data[0] = 5;
        valid[0] = true;
        assert!(m.program_line(PhysAddr::new(256), &data, &valid));
        assert!(!m.program_line(PhysAddr::new(256), &data, &valid));
        assert_eq!(m.line_writes(), 1);
        assert_eq!(m.dcw_suppressed(), 1);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn program_line_requires_alignment() {
        let mut m = Media::new();
        let data = [0u8; BUF_LINE_BYTES];
        let valid = [false; BUF_LINE_BYTES];
        m.program_line(PhysAddr::new(8), &data, &valid);
    }

    #[test]
    fn read_u64_little_endian() {
        let mut m = Media::new();
        m.write_masked(PhysAddr::new(0), &42u64.to_le_bytes(), 8);
        assert_eq!(m.read_u64(PhysAddr::new(8)), 42);
    }

    #[test]
    fn snapshots_are_copy_on_write() {
        let mut m = Media::new();
        for line in 0..32u64 {
            m.write_masked(PhysAddr::new(line * 256), &[line as u8 + 1], 0);
        }
        assert_eq!(m.touched_pages(), 2);
        let snap = m.clone();
        assert_eq!(m.shared_pages(), 2, "clone shares every page");
        // Writing one line after the snapshot duplicates only its page.
        m.write_masked(PhysAddr::new(0), &[0xff], 0);
        assert_eq!(m.shared_pages(), 1, "only the written page was copied");
        // The snapshot still sees the pre-write bytes; the live media sees
        // the new ones.
        assert_eq!(snap.read(PhysAddr::new(0), 1), vec![1]);
        assert_eq!(m.read(PhysAddr::new(0), 1), vec![0xff]);
        // A DCW-suppressed write to an already-touched shared page must not
        // duplicate it.
        let before = m.shared_pages();
        assert!(!m.write_masked(PhysAddr::new(16 * 256), &[17], 0));
        assert_eq!(m.shared_pages(), before, "suppressed write copied a page");
    }

    #[test]
    fn snapshot_counters_are_independent() {
        let mut m = Media::new();
        m.write_masked(PhysAddr::new(0), &[1], 0);
        let snap = m.clone();
        m.write_masked(PhysAddr::new(256), &[2], 0);
        assert_eq!(m.line_writes(), 2);
        assert_eq!(snap.line_writes(), 1);
        assert_eq!(snap.touched_lines(), 1);
        assert_eq!(m.touched_lines(), 2);
    }

    /// The retained reference implementation: the pre-paging
    /// `HashMap<line, Box<[u8; 256]>>` media, kept verbatim so the paged
    /// implementation can be differentially tested against it.
    mod reference {
        use std::collections::HashMap;

        use silo_types::{PhysAddr, BUF_LINE_BYTES};

        #[derive(Clone, Debug, Default)]
        pub struct RefMedia {
            lines: HashMap<u64, Box<[u8; BUF_LINE_BYTES]>>,
            line_writes: u64,
            bits_programmed: u64,
            dcw_suppressed: u64,
        }

        impl RefMedia {
            pub fn write_masked(
                &mut self,
                line_base: PhysAddr,
                bytes: &[u8],
                offset: usize,
            ) -> bool {
                assert!(offset + bytes.len() <= BUF_LINE_BYTES);
                let idx = line_base.buf_line_index();
                let line = self
                    .lines
                    .entry(idx)
                    .or_insert_with(|| Box::new([0u8; BUF_LINE_BYTES]));
                let target = &mut line[offset..offset + bytes.len()];
                let changed_bits: u64 = target
                    .iter()
                    .zip(bytes)
                    .map(|(old, new)| (old ^ new).count_ones() as u64)
                    .sum();
                if changed_bits == 0 {
                    self.dcw_suppressed += 1;
                    return false;
                }
                target.copy_from_slice(bytes);
                self.line_writes += 1;
                self.bits_programmed += changed_bits;
                true
            }

            pub fn program_line(
                &mut self,
                line_base: PhysAddr,
                data: &[u8; BUF_LINE_BYTES],
                valid: &[bool; BUF_LINE_BYTES],
            ) -> bool {
                assert_eq!(line_base.buf_line_aligned(), line_base);
                let idx = line_base.buf_line_index();
                let line = self
                    .lines
                    .entry(idx)
                    .or_insert_with(|| Box::new([0u8; BUF_LINE_BYTES]));
                let mut changed_bits = 0u64;
                for i in 0..BUF_LINE_BYTES {
                    if valid[i] {
                        changed_bits += (line[i] ^ data[i]).count_ones() as u64;
                    }
                }
                if changed_bits == 0 {
                    self.dcw_suppressed += 1;
                    return false;
                }
                for i in 0..BUF_LINE_BYTES {
                    if valid[i] {
                        line[i] = data[i];
                    }
                }
                self.line_writes += 1;
                self.bits_programmed += changed_bits;
                true
            }

            pub fn revert(&mut self, addr: PhysAddr, bytes: &[u8]) {
                let mut cur = addr.as_u64();
                let mut rest = bytes;
                while !rest.is_empty() {
                    let off = (cur % BUF_LINE_BYTES as u64) as usize;
                    let chunk = rest.len().min(BUF_LINE_BYTES - off);
                    let idx = cur / BUF_LINE_BYTES as u64;
                    let line = self
                        .lines
                        .entry(idx)
                        .or_insert_with(|| Box::new([0u8; BUF_LINE_BYTES]));
                    line[off..off + chunk].copy_from_slice(&rest[..chunk]);
                    cur += chunk as u64;
                    rest = &rest[chunk..];
                }
            }

            pub fn read(&self, addr: PhysAddr, len: usize) -> Vec<u8> {
                let mut out = Vec::with_capacity(len);
                let mut cur = addr.as_u64();
                let mut remaining = len;
                while remaining > 0 {
                    let line_idx = cur / BUF_LINE_BYTES as u64;
                    let off = (cur % BUF_LINE_BYTES as u64) as usize;
                    let chunk = remaining.min(BUF_LINE_BYTES - off);
                    match self.lines.get(&line_idx) {
                        Some(line) => out.extend_from_slice(&line[off..off + chunk]),
                        None => out.extend(std::iter::repeat_n(0u8, chunk)),
                    }
                    cur += chunk as u64;
                    remaining -= chunk;
                }
                out
            }

            pub fn line_writes(&self) -> u64 {
                self.line_writes
            }

            pub fn bits_programmed(&self) -> u64 {
                self.bits_programmed
            }

            pub fn dcw_suppressed(&self) -> u64 {
                self.dcw_suppressed
            }

            pub fn touched_lines(&self) -> usize {
                self.lines.len()
            }
        }
    }

    /// One random operation applied identically to both implementations.
    fn apply_random_op(
        rng: &mut silo_types::SplitMix64,
        paged: &mut Media,
        reference: &mut reference::RefMedia,
    ) {
        const SPAN: u64 = 4 * PAGE_BYTES as u64; // a few pages of address space
        match rng.next_u64() % 5 {
            // write_masked with random length/offset inside one line
            0 | 1 => {
                let line =
                    (rng.next_u64() % (SPAN / BUF_LINE_BYTES as u64)) * BUF_LINE_BYTES as u64;
                let offset = (rng.next_u64() % 200) as usize;
                let len = 1 + (rng.next_u64() % (BUF_LINE_BYTES as u64 - offset as u64)) as usize;
                let fill = (rng.next_u64() % 4) as u8; // small alphabet → real DCW hits
                let bytes = vec![fill; len];
                let a = PhysAddr::new(line);
                assert_eq!(
                    paged.write_masked(a, &bytes, offset),
                    reference.write_masked(a, &bytes, offset),
                    "write_masked program/suppress divergence at {a}"
                );
            }
            // program_line with a random valid mask
            2 => {
                let line =
                    (rng.next_u64() % (SPAN / BUF_LINE_BYTES as u64)) * BUF_LINE_BYTES as u64;
                let mut data = [0u8; BUF_LINE_BYTES];
                let mut valid = [false; BUF_LINE_BYTES];
                for i in 0..BUF_LINE_BYTES {
                    if rng.next_u64().is_multiple_of(3) {
                        valid[i] = true;
                        data[i] = (rng.next_u64() % 4) as u8;
                    }
                }
                let a = PhysAddr::new(line);
                assert_eq!(
                    paged.program_line(a, &data, &valid),
                    reference.program_line(a, &data, &valid),
                    "program_line divergence at {a}"
                );
            }
            // revert (crash-time discard_to path), may cross lines/pages
            3 => {
                let start = rng.next_u64() % (SPAN - 600);
                let len = 1 + (rng.next_u64() % 512) as usize;
                let bytes: Vec<u8> = (0..len).map(|_| (rng.next_u64() % 4) as u8).collect();
                paged.revert(PhysAddr::new(start), &bytes);
                reference.revert(PhysAddr::new(start), &bytes);
            }
            // read, may cross lines/pages
            _ => {
                let start = rng.next_u64() % (SPAN - 600);
                let len = 1 + (rng.next_u64() % 512) as usize;
                let a = PhysAddr::new(start);
                assert_eq!(paged.read(a, len), reference.read(a, len), "read at {a}");
            }
        }
    }

    #[test]
    fn differential_vs_reference_hashmap_media() {
        // 4000 random store/program/revert/read ops against the retained
        // reference implementation: identical images, identical program
        // counters. Identical `line_writes` implies identical
        // `LineProgram` durability-event counts, since the device derives
        // those events from line-write deltas.
        let mut rng = silo_types::SplitMix64::new(0x51_70);
        let mut paged = Media::new();
        let mut reference = reference::RefMedia::default();
        for _ in 0..4000 {
            apply_random_op(&mut rng, &mut paged, &mut reference);
        }
        assert_eq!(paged.line_writes(), reference.line_writes());
        assert_eq!(paged.bits_programmed(), reference.bits_programmed());
        assert_eq!(paged.dcw_suppressed(), reference.dcw_suppressed());
        assert_eq!(paged.touched_lines(), reference.touched_lines());
        // Full-image sweep over the exercised span.
        let span = 4 * PAGE_BYTES;
        assert_eq!(
            paged.read(PhysAddr::ZERO, span),
            reference.read(PhysAddr::ZERO, span),
            "final images diverge"
        );
    }

    #[test]
    fn differential_holds_across_cow_snapshots() {
        // Same differential, but the paged media is snapshotted mid-stream
        // so every later write exercises the Arc::make_mut COW path.
        let mut rng = silo_types::SplitMix64::new(0xc0_77);
        let mut paged = Media::new();
        let mut reference = reference::RefMedia::default();
        let mut snapshots = Vec::new();
        for step in 0..3000 {
            if step % 500 == 250 {
                snapshots.push((paged.clone(), reference.clone()));
            }
            apply_random_op(&mut rng, &mut paged, &mut reference);
        }
        let span = 4 * PAGE_BYTES;
        assert_eq!(
            paged.read(PhysAddr::ZERO, span),
            reference.read(PhysAddr::ZERO, span)
        );
        assert_eq!(paged.touched_lines(), reference.touched_lines());
        // Every frozen snapshot must still match its reference twin — the
        // COW writes since must not have leaked into shared pages.
        for (snap, ref_snap) in &snapshots {
            assert_eq!(
                snap.read(PhysAddr::ZERO, span),
                ref_snap.read(PhysAddr::ZERO, span),
                "a post-snapshot write leaked into a frozen snapshot"
            );
            assert_eq!(snap.line_writes(), ref_snap.line_writes());
        }
    }
}

silo_types::impl_snapshot_via_clone!(PagedMedia);
