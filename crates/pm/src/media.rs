//! The physical PCM media with bit-level data-comparison-write accounting.

use std::collections::HashMap;

use silo_types::{PhysAddr, BUF_LINE_BYTES};

use crate::WearTracker;

/// The phase-change-memory physical media.
///
/// Storage is sparse: only buffer lines that have ever been programmed are
/// materialized, so a 16 GB address space (paper Table II) costs memory
/// proportional to the touched footprint.
///
/// Writes arrive from the [on-PM buffer](crate::OnPmBuffer) at buffer-line
/// granularity with a per-byte valid mask (read-modify-write, paper §III-E).
/// A **data-comparison-write** check (paper \[62\]) compares the incoming
/// bytes with the stored ones: if no bit changes, the media is not
/// programmed at all and the write is not counted — the mechanism Silo
/// relies on to make post-commit cacheline evictions free (§III-D, CE/IPU
/// timing scenario 3).
///
/// # Examples
///
/// ```
/// use silo_pm::Media;
/// use silo_types::PhysAddr;
///
/// let mut m = Media::new();
/// let wrote = m.write_masked(PhysAddr::new(0), &[1, 2, 3], 0);
/// assert!(wrote);
/// // Re-writing identical bytes is suppressed by data-comparison-write.
/// assert!(!m.write_masked(PhysAddr::new(0), &[1, 2, 3], 0));
/// assert_eq!(m.read(PhysAddr::new(1), 2), vec![2, 3]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Media {
    lines: HashMap<u64, Box<[u8; BUF_LINE_BYTES]>>,
    line_writes: u64,
    bits_programmed: u64,
    dcw_suppressed: u64,
    wear: WearTracker,
}

impl Media {
    /// Creates empty (all-zero) media.
    pub fn new() -> Self {
        Media::default()
    }

    /// Programs `bytes` starting at the byte address `base + offset`,
    /// where `base` must be buffer-line aligned when `offset` is the offset
    /// within that line. Returns `true` if the media was actually programmed
    /// (at least one bit changed), `false` if data-comparison-write
    /// suppressed it.
    ///
    /// The write must not cross a buffer-line boundary — the on-PM buffer
    /// splits larger writes before they reach the media.
    ///
    /// # Panics
    ///
    /// Panics if `offset + bytes.len()` exceeds the buffer-line size.
    pub fn write_masked(&mut self, line_base: PhysAddr, bytes: &[u8], offset: usize) -> bool {
        assert!(
            offset + bytes.len() <= BUF_LINE_BYTES,
            "media write crosses a buffer-line boundary: offset {offset} + len {}",
            bytes.len()
        );
        let idx = line_base.buf_line_index();
        let line = self
            .lines
            .entry(idx)
            .or_insert_with(|| Box::new([0u8; BUF_LINE_BYTES]));
        let target = &mut line[offset..offset + bytes.len()];
        let changed_bits: u64 = target
            .iter()
            .zip(bytes)
            .map(|(old, new)| (old ^ new).count_ones() as u64)
            .sum();
        if changed_bits == 0 {
            self.dcw_suppressed += 1;
            return false;
        }
        target.copy_from_slice(bytes);
        self.line_writes += 1;
        self.bits_programmed += changed_bits;
        self.wear.record_program(idx);
        true
    }

    /// Programs one full buffer line in a single read-modify-write cycle,
    /// applying only the bytes flagged in `valid`. Returns `true` if the
    /// media was programmed (any valid byte changed any bit); a fully
    /// unchanged program is suppressed by data-comparison-write and counts
    /// nothing.
    ///
    /// This is the path the [on-PM buffer](crate::OnPmBuffer) uses when it
    /// drains a staged line: however many words, cachelines, and log-batch
    /// fragments coalesced into the line, the media sees **one** program —
    /// the write-amplification reduction of paper §III-E.
    ///
    /// # Panics
    ///
    /// Panics if `line_base` is not buffer-line aligned.
    pub fn program_line(
        &mut self,
        line_base: PhysAddr,
        data: &[u8; BUF_LINE_BYTES],
        valid: &[bool; BUF_LINE_BYTES],
    ) -> bool {
        assert_eq!(
            line_base.buf_line_aligned(),
            line_base,
            "program_line requires a buffer-line-aligned base"
        );
        let idx = line_base.buf_line_index();
        let line = self
            .lines
            .entry(idx)
            .or_insert_with(|| Box::new([0u8; BUF_LINE_BYTES]));
        let mut changed_bits = 0u64;
        for i in 0..BUF_LINE_BYTES {
            if valid[i] {
                changed_bits += (line[i] ^ data[i]).count_ones() as u64;
            }
        }
        if changed_bits == 0 {
            self.dcw_suppressed += 1;
            return false;
        }
        for i in 0..BUF_LINE_BYTES {
            if valid[i] {
                line[i] = data[i];
            }
        }
        self.line_writes += 1;
        self.bits_programmed += changed_bits;
        self.wear.record_program(idx);
        true
    }

    /// Reverts stored bytes without a program cycle: the crash-time
    /// rollback of writes whose persistence-domain tags were invalidated
    /// (e.g. LAD's MC buffer discarding an uncommitted transaction's
    /// prepared lines). Counts no line write, no programmed bits, no wear:
    /// the cells were already programmed once when the write was modeled
    /// eagerly; this only corrects which image is architecturally valid.
    /// May cross buffer-line boundaries.
    pub fn revert(&mut self, addr: PhysAddr, bytes: &[u8]) {
        let mut cur = addr.as_u64();
        let mut rest = bytes;
        while !rest.is_empty() {
            let off = (cur % BUF_LINE_BYTES as u64) as usize;
            let chunk = rest.len().min(BUF_LINE_BYTES - off);
            let idx = cur / BUF_LINE_BYTES as u64;
            let line = self
                .lines
                .entry(idx)
                .or_insert_with(|| Box::new([0u8; BUF_LINE_BYTES]));
            line[off..off + chunk].copy_from_slice(&rest[..chunk]);
            cur += chunk as u64;
            rest = &rest[chunk..];
        }
    }

    /// Reads `len` bytes starting at `addr`. Unprogrammed media reads as
    /// zero. Reads may cross buffer-line boundaries.
    pub fn read(&self, addr: PhysAddr, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut cur = addr.as_u64();
        let mut remaining = len;
        while remaining > 0 {
            let line_idx = cur / BUF_LINE_BYTES as u64;
            let off = (cur % BUF_LINE_BYTES as u64) as usize;
            let chunk = remaining.min(BUF_LINE_BYTES - off);
            match self.lines.get(&line_idx) {
                Some(line) => out.extend_from_slice(&line[off..off + chunk]),
                None => out.extend(std::iter::repeat_n(0u8, chunk)),
            }
            cur += chunk as u64;
            remaining -= chunk;
        }
        out
    }

    /// Reads one little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: PhysAddr) -> u64 {
        let b = self.read(addr, 8);
        u64::from_le_bytes(b.try_into().expect("read(8) returns 8 bytes"))
    }

    /// Number of media line programs performed (the paper Fig 11 metric).
    pub fn line_writes(&self) -> u64 {
        self.line_writes
    }

    /// Total bits actually programmed across all writes.
    pub fn bits_programmed(&self) -> u64 {
        self.bits_programmed
    }

    /// Number of writes fully suppressed by data-comparison-write.
    pub fn dcw_suppressed(&self) -> u64 {
        self.dcw_suppressed
    }

    /// Number of distinct buffer lines ever materialized (footprint).
    pub fn touched_lines(&self) -> usize {
        self.lines.len()
    }

    /// Per-line wear counters (endurance analysis).
    pub fn wear(&self) -> &WearTracker {
        &self.wear
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_media_reads_zero() {
        let m = Media::new();
        assert_eq!(m.read(PhysAddr::new(12345), 4), vec![0, 0, 0, 0]);
        assert_eq!(m.read_u64(PhysAddr::new(0)), 0);
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut m = Media::new();
        m.write_masked(PhysAddr::new(512), &[9, 8, 7, 6], 10);
        assert_eq!(m.read(PhysAddr::new(522), 4), vec![9, 8, 7, 6]);
    }

    #[test]
    fn dcw_suppresses_identical_writes() {
        let mut m = Media::new();
        assert!(m.write_masked(PhysAddr::new(0), &[1, 1], 0));
        assert!(!m.write_masked(PhysAddr::new(0), &[1, 1], 0));
        assert_eq!(m.line_writes(), 1);
        assert_eq!(m.dcw_suppressed(), 1);
    }

    #[test]
    fn dcw_counts_only_changed_bits() {
        let mut m = Media::new();
        m.write_masked(PhysAddr::new(0), &[0b0000_0001], 0);
        assert_eq!(m.bits_programmed(), 1);
        m.write_masked(PhysAddr::new(0), &[0b0000_0011], 0);
        assert_eq!(m.bits_programmed(), 2); // only one new bit flipped
    }

    #[test]
    fn writing_zeros_to_fresh_media_is_suppressed() {
        // Fresh media is all-zero, so a zero write changes no bits.
        let mut m = Media::new();
        assert!(!m.write_masked(PhysAddr::new(64), &[0, 0, 0], 0));
        assert_eq!(m.line_writes(), 0);
    }

    #[test]
    fn reads_cross_buffer_line_boundaries() {
        let mut m = Media::new();
        m.write_masked(PhysAddr::new(0), &[0xaa], 255); // last byte of line 0
        m.write_masked(PhysAddr::new(256), &[0xbb], 0); // first byte of line 1
        assert_eq!(m.read(PhysAddr::new(255), 2), vec![0xaa, 0xbb]);
    }

    #[test]
    #[should_panic(expected = "crosses a buffer-line boundary")]
    fn writes_may_not_cross_buffer_lines() {
        let mut m = Media::new();
        m.write_masked(PhysAddr::new(0), &[1, 2], 255);
    }

    #[test]
    fn footprint_is_sparse() {
        let mut m = Media::new();
        m.write_masked(PhysAddr::new(0), &[1], 0);
        m.write_masked(PhysAddr::new(1 << 30), &[1], 0);
        assert_eq!(m.touched_lines(), 2);
    }

    #[test]
    fn program_line_counts_one_write_for_many_fragments() {
        let mut m = Media::new();
        let mut data = [0u8; BUF_LINE_BYTES];
        let mut valid = [false; BUF_LINE_BYTES];
        // Three disjoint fragments (two words and a half-cacheline) in one
        // staged line...
        for i in 0..8 {
            data[i] = 0x11;
            valid[i] = true;
        }
        for i in 16..24 {
            data[i] = 0x22;
            valid[i] = true;
        }
        for i in 128..160 {
            data[i] = 0x33;
            valid[i] = true;
        }
        // ...cost exactly one media line write.
        assert!(m.program_line(PhysAddr::new(0), &data, &valid));
        assert_eq!(m.line_writes(), 1);
        assert_eq!(m.read(PhysAddr::new(16), 8), vec![0x22; 8]);
        // Invalid bytes were not touched.
        assert_eq!(m.read(PhysAddr::new(8), 8), vec![0; 8]);
    }

    #[test]
    fn program_line_identical_content_suppressed() {
        let mut m = Media::new();
        let mut data = [0u8; BUF_LINE_BYTES];
        let mut valid = [false; BUF_LINE_BYTES];
        data[0] = 5;
        valid[0] = true;
        assert!(m.program_line(PhysAddr::new(256), &data, &valid));
        assert!(!m.program_line(PhysAddr::new(256), &data, &valid));
        assert_eq!(m.line_writes(), 1);
        assert_eq!(m.dcw_suppressed(), 1);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn program_line_requires_alignment() {
        let mut m = Media::new();
        let data = [0u8; BUF_LINE_BYTES];
        let valid = [false; BUF_LINE_BYTES];
        m.program_line(PhysAddr::new(8), &data, &valid);
    }

    #[test]
    fn read_u64_little_endian() {
        let mut m = Media::new();
        m.write_masked(PhysAddr::new(0), &42u64.to_le_bytes(), 8);
        assert_eq!(m.read_u64(PhysAddr::new(8)), 42);
    }
}
