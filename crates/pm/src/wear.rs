//! Per-line wear tracking and PM lifetime estimation.
//!
//! The paper's first motivation for cutting log writes is endurance:
//! "the write traffic significantly increases, which exacerbates the
//! write endurance of PM and hence shortens the PM lifetime" (§I). This
//! module quantifies that: every media line program bumps the touched
//! line's wear counter, and [`WearTracker::lifetime_estimate`] converts
//! the observed peak write rate into a device lifetime under a given
//! cell-endurance budget.
//!
//! Like the [media](crate::Media) itself, the counters are stored in
//! `Arc`-shared pages so that cloning a tracker (part of every
//! `RunOutcome::pm` snapshot) is copy-on-write rather than a deep copy of
//! one entry per touched line.

use std::sync::Arc;

use silo_types::FxHashMap;

/// Typical phase-change-memory cell endurance (program cycles before
/// failure), the commonly cited 10⁸ figure for PCM.
pub const PCM_CELL_ENDURANCE: u64 = 100_000_000;

/// Wear counters per page: 64 lines × 8 B = one 512 B slab.
const LINES_PER_PAGE: usize = 64;

/// Tracks how many times each on-PM-buffer line has been programmed.
///
/// # Examples
///
/// ```
/// use silo_pm::WearTracker;
///
/// let mut wear = WearTracker::new();
/// wear.record_program(3);
/// wear.record_program(3);
/// wear.record_program(9);
/// assert_eq!(wear.max_wear(), 2);
/// assert_eq!(wear.total_programs(), 3);
/// // max / mean = 2 / 1.5
/// assert!((wear.wear_imbalance() - 4.0 / 3.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, Default)]
pub struct WearTracker {
    pages: FxHashMap<u64, Arc<[u64; LINES_PER_PAGE]>>,
    /// Distinct lines with a non-zero count, maintained incrementally so
    /// [`lines_touched`](Self::lines_touched) stays O(1).
    touched: usize,
    total: u64,
}

impl WearTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        WearTracker::default()
    }

    /// Records one program of buffer line `line_index`.
    pub fn record_program(&mut self, line_index: u64) {
        let entry = self
            .pages
            .entry(line_index / LINES_PER_PAGE as u64)
            .or_insert_with(|| Arc::new([0u64; LINES_PER_PAGE]));
        let counter = &mut Arc::make_mut(entry)[(line_index % LINES_PER_PAGE as u64) as usize];
        if *counter == 0 {
            self.touched += 1;
        }
        *counter += 1;
        self.total += 1;
    }

    /// Iterates all `(line_index, programs)` pairs with non-zero counts, in
    /// map (unspecified) order — callers that render must sort.
    fn iter_counts(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.pages.iter().flat_map(|(&page, counts)| {
            counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(move |(slot, &c)| (page * LINES_PER_PAGE as u64 + slot as u64, c))
        })
    }

    /// Total line programs observed.
    pub fn total_programs(&self) -> u64 {
        self.total
    }

    /// Distinct lines ever programmed.
    pub fn lines_touched(&self) -> usize {
        self.touched
    }

    /// The most-programmed line's count — the wear-leveling worst case
    /// that bounds device lifetime.
    pub fn max_wear(&self) -> u64 {
        self.pages
            .values()
            .flat_map(|counts| counts.iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// Mean programs across touched lines.
    pub fn mean_wear(&self) -> f64 {
        if self.touched == 0 {
            0.0
        } else {
            self.total as f64 / self.touched as f64
        }
    }

    /// `max / mean` wear — 1.0 is perfectly level, larger is worse.
    pub fn wear_imbalance(&self) -> f64 {
        let mean = self.mean_wear();
        if mean == 0.0 {
            0.0
        } else {
            self.max_wear() as f64 / mean
        }
    }

    /// The `n` most-worn lines, hottest first: `(line_index, programs)`.
    pub fn hottest_lines(&self, n: usize) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.iter_counts().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Device lifetime estimate in simulated seconds, assuming the hottest
    /// line keeps its observed program rate and cells endure
    /// `cell_endurance` programs. Returns `None` when nothing was written.
    ///
    /// `elapsed_seconds` is the simulated wall-clock the counts were
    /// gathered over.
    pub fn lifetime_estimate(&self, elapsed_seconds: f64, cell_endurance: u64) -> Option<f64> {
        let max = self.max_wear();
        if max == 0 || elapsed_seconds <= 0.0 {
            return None;
        }
        let rate = max as f64 / elapsed_seconds; // programs/s on the hottest line
        Some(cell_endurance as f64 / rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker_is_zero() {
        let w = WearTracker::new();
        assert_eq!(w.total_programs(), 0);
        assert_eq!(w.max_wear(), 0);
        assert_eq!(w.mean_wear(), 0.0);
        assert_eq!(w.wear_imbalance(), 0.0);
        assert!(w.hottest_lines(5).is_empty());
        assert_eq!(w.lifetime_estimate(1.0, PCM_CELL_ENDURANCE), None);
    }

    #[test]
    fn counts_accumulate_per_line() {
        let mut w = WearTracker::new();
        for _ in 0..5 {
            w.record_program(1);
        }
        w.record_program(2);
        assert_eq!(w.total_programs(), 6);
        assert_eq!(w.lines_touched(), 2);
        assert_eq!(w.max_wear(), 5);
        assert!((w.mean_wear() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn hottest_lines_sorted_desc_with_stable_ties() {
        let mut w = WearTracker::new();
        w.record_program(7);
        w.record_program(7);
        w.record_program(3);
        w.record_program(3);
        w.record_program(9);
        assert_eq!(w.hottest_lines(2), vec![(3, 2), (7, 2)]);
        assert_eq!(w.hottest_lines(10).len(), 3);
    }

    #[test]
    fn lines_in_distinct_pages_do_not_collide() {
        let mut w = WearTracker::new();
        w.record_program(0);
        w.record_program(LINES_PER_PAGE as u64); // slot 0 of the next page
        w.record_program(LINES_PER_PAGE as u64);
        assert_eq!(w.lines_touched(), 2);
        assert_eq!(w.max_wear(), 2);
        assert_eq!(w.hottest_lines(2), vec![(LINES_PER_PAGE as u64, 2), (0, 1)]);
    }

    #[test]
    fn clone_is_copy_on_write_and_independent() {
        let mut w = WearTracker::new();
        w.record_program(5);
        let snap = w.clone();
        w.record_program(5);
        w.record_program(6);
        assert_eq!(w.total_programs(), 3);
        assert_eq!(snap.total_programs(), 1);
        assert_eq!(snap.max_wear(), 1);
        assert_eq!(snap.lines_touched(), 1);
        assert_eq!(w.lines_touched(), 2);
    }

    #[test]
    fn lifetime_scales_inversely_with_rate() {
        let mut w = WearTracker::new();
        for _ in 0..100 {
            w.record_program(0);
        }
        // 100 programs/s on the hottest line, 10^8 endurance -> 10^6 s.
        let life = w
            .lifetime_estimate(1.0, PCM_CELL_ENDURANCE)
            .expect("writes happened");
        assert!((life - 1e6).abs() / 1e6 < 1e-9);
        let slower = w
            .lifetime_estimate(10.0, PCM_CELL_ENDURANCE)
            .expect("writes happened");
        assert!((slower - 1e7).abs() / 1e7 < 1e-9);
    }
}

silo_types::impl_snapshot_via_clone!(WearTracker);
