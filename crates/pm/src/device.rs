//! The composed PM DIMM: on-PM buffer in front of the media.

use silo_types::{PhysAddr, Word, WORD_BYTES};

use crate::{
    DrainReport, EventCounters, EventKind, FaultModel, Media, OnPmBuffer, PmStats,
    DEFAULT_BUFFER_LINES,
};

/// Configuration of a [`PmDevice`].
///
/// # Examples
///
/// ```
/// use silo_pm::PmDeviceConfig;
///
/// let cfg = PmDeviceConfig {
///     buffer_lines: 16,
///     ..PmDeviceConfig::default()
/// };
/// assert_eq!(cfg.buffer_lines, 16);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PmDeviceConfig {
    /// Number of 256 B lines in the on-PM buffer.
    pub buffer_lines: usize,
    /// First address of the log region; writes at or above it are counted
    /// as log-region traffic. `None` counts everything as data-region.
    pub log_region_start: Option<u64>,
}

impl Default for PmDeviceConfig {
    fn default() -> Self {
        PmDeviceConfig {
            buffer_lines: DEFAULT_BUFFER_LINES,
            log_region_start: None,
        }
    }
}

/// The device's power state across the crash sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Power {
    /// Normal operation: writes stage with capacity pressure, durability
    /// events count toward an armed crash point.
    On,
    /// Post-power-loss, on residual energy: staged writes are unbounded
    /// (charged once at the final drain), write-through bytes charge the
    /// budget immediately.
    Battery,
    /// Recovery: every accepted write is one `RecoveryStep` event, so a
    /// sweep can re-crash mid-recovery.
    Recovery,
}

/// The simulated PM DIMM: [`OnPmBuffer`] staging in front of [`Media`],
/// with unified traffic accounting.
///
/// All writes — word-granular new data from Silo's log-update scheme,
/// 64 B cacheline evictions, and batched undo-log flushes — enter through
/// [`PmDevice::write`] and coalesce in the buffer (paper §III-E). Reads see
/// buffered data (read-through). Because both the buffer (ADR) and the media
/// are persistent across a crash, the device's logical contents — what
/// [`PmDevice::read`] returns — are exactly the post-crash state; crash
/// handling in the simulator just stops issuing writes.
///
/// # Examples
///
/// ```
/// use silo_pm::{PmDevice, PmDeviceConfig};
/// use silo_types::{PhysAddr, Word};
///
/// let mut pm = PmDevice::new(PmDeviceConfig::default());
/// pm.write_word(PhysAddr::new(64), Word::new(99));
/// assert_eq!(pm.read_word(PhysAddr::new(64)), Word::new(99));
/// ```
#[derive(Clone, Debug)]
pub struct PmDevice {
    media: Media,
    buffer: OnPmBuffer,
    config: PmDeviceConfig,
    accepted_writes: u64,
    accepted_bytes: u64,
    data_region_writes: u64,
    log_region_writes: u64,
    reads: u64,
    power: Power,
    /// Power has failed and no budget remains: writes silently drop.
    tripped: bool,
    /// Trip power when the total event count reaches this value.
    crash_at_event: Option<u64>,
    events: EventCounters,
    /// Residual-energy bytes left while `power == Battery`.
    battery_remaining: u64,
    /// Torn-line fault armed for the final drain.
    torn_keep: Option<usize>,
    /// Trip power when `events.recovery_steps` reaches this value.
    recovery_trip_at: Option<u64>,
    dropped_writes: u64,
    dropped_bytes: u64,
}

impl PmDevice {
    /// Creates a device from a configuration.
    pub fn new(config: PmDeviceConfig) -> Self {
        PmDevice {
            media: Media::new(),
            buffer: OnPmBuffer::new(config.buffer_lines),
            config,
            accepted_writes: 0,
            accepted_bytes: 0,
            data_region_writes: 0,
            log_region_writes: 0,
            reads: 0,
            power: Power::On,
            tripped: false,
            crash_at_event: None,
            events: EventCounters::default(),
            battery_remaining: u64::MAX,
            torn_keep: None,
            recovery_trip_at: None,
            dropped_writes: 0,
            dropped_bytes: 0,
        }
    }

    fn count_accepted(&mut self, addr: PhysAddr, len: usize) {
        self.accepted_writes += 1;
        self.accepted_bytes += len as u64;
        match self.config.log_region_start {
            Some(start) if addr.as_u64() >= start => self.log_region_writes += 1,
            _ => self.data_region_writes += 1,
        }
    }

    fn count_dropped(&mut self, len: usize) {
        self.dropped_writes += 1;
        self.dropped_bytes += len as u64;
    }

    fn is_log_addr(&self, addr: PhysAddr) -> bool {
        matches!(self.config.log_region_start, Some(start) if addr.as_u64() >= start)
    }

    /// Accepts a write of arbitrary size into the on-PM buffer.
    pub fn write(&mut self, addr: PhysAddr, bytes: &[u8]) {
        if self.tripped {
            self.count_dropped(bytes.len());
            return;
        }
        match self.power {
            Power::On => {
                // A log-region write is a log-buffer drain event; power may
                // fail just before it lands.
                if self.is_log_addr(addr) && self.note_event(EventKind::LogDrain) {
                    self.count_dropped(bytes.len());
                    return;
                }
                self.count_accepted(addr, bytes.len());
                let before = self.media.line_writes();
                self.buffer.write(addr, bytes, &mut self.media);
                for _ in before..self.media.line_writes() {
                    self.note_event(EventKind::LineProgram);
                }
            }
            Power::Battery => {
                // Residual energy: stage without capacity drains; the
                // budget is charged once, at `battery_drain`.
                self.count_accepted(addr, bytes.len());
                self.buffer.stage_unbounded(addr, bytes);
            }
            Power::Recovery => {
                self.count_accepted(addr, bytes.len());
                self.buffer.write(addr, bytes, &mut self.media);
                self.note_event(EventKind::RecoveryStep);
            }
        }
    }

    /// Accepts a write that **bypasses** the coalescing buffer and programs
    /// the media directly (split at buffer-line boundaries, one line
    /// program per touched line unless data-comparison-write suppresses
    /// it). This is the path of the baseline logging schemes, which do not
    /// have Silo's §III-E on-PM write-coalescing mechanism. Any staged copy
    /// of the bytes is patched so the two paths stay coherent.
    ///
    /// Returns the number of media line programs actually performed.
    pub fn write_through(&mut self, addr: PhysAddr, bytes: &[u8]) -> u64 {
        if self.tripped {
            self.count_dropped(bytes.len());
            return 0;
        }
        match self.power {
            Power::On => {
                if self.is_log_addr(addr) && self.note_event(EventKind::LogDrain) {
                    self.count_dropped(bytes.len());
                    return 0;
                }
                self.count_accepted(addr, bytes.len());
                let n = self.write_through_raw(addr, bytes);
                for _ in 0..n {
                    self.note_event(EventKind::LineProgram);
                }
                n
            }
            Power::Battery => {
                // Bypass writes program the media immediately, so they
                // charge the residual-energy budget as they happen.
                let keep = (self.battery_remaining.min(bytes.len() as u64)) as usize;
                self.battery_remaining -= keep as u64;
                if keep > 0 {
                    self.count_accepted(addr, keep);
                }
                if keep < bytes.len() {
                    self.count_dropped(bytes.len() - keep);
                    self.tripped = true;
                }
                if keep == 0 {
                    return 0;
                }
                self.write_through_raw(addr, &bytes[..keep])
            }
            Power::Recovery => {
                self.count_accepted(addr, bytes.len());
                let n = self.write_through_raw(addr, bytes);
                self.note_event(EventKind::RecoveryStep);
                n
            }
        }
    }

    /// The uncounted bypass path: patches staged copies and programs the
    /// media, split at buffer-line boundaries.
    fn write_through_raw(&mut self, addr: PhysAddr, bytes: &[u8]) -> u64 {
        self.buffer.patch_if_staged(addr, bytes);
        let before = self.media.line_writes();
        let mut cur = addr.as_u64();
        let mut rest = bytes;
        while !rest.is_empty() {
            let off = (cur % silo_types::BUF_LINE_BYTES as u64) as usize;
            let chunk = rest.len().min(silo_types::BUF_LINE_BYTES - off);
            let base = PhysAddr::new(cur - off as u64);
            self.media.write_masked(base, &rest[..chunk], off);
            cur += chunk as u64;
            rest = &rest[chunk..];
        }
        self.media.line_writes() - before
    }

    /// Accepts an 8 B word write (the Silo in-place-update granularity,
    /// §III-E: "each new data is atomically written to PM without wasting
    /// the bus width").
    pub fn write_word(&mut self, addr: PhysAddr, word: Word) {
        self.write(addr, &word.to_le_bytes());
    }

    /// Reads `len` bytes of the device's logical contents (buffer overrides
    /// media).
    pub fn read(&mut self, addr: PhysAddr, len: usize) -> Vec<u8> {
        self.reads += 1;
        self.buffer.read_through(addr, len, &self.media)
    }

    /// Reads one word.
    pub fn read_word(&mut self, addr: PhysAddr) -> Word {
        self.reads += 1;
        self.peek_word(addr)
    }

    /// Reads one little-endian `u64`.
    pub fn read_u64(&mut self, addr: PhysAddr) -> u64 {
        self.read_word(addr).as_u64()
    }

    /// Peeks at the logical contents without counting a read (for test
    /// oracles and recovery-verification code).
    pub fn peek(&self, addr: PhysAddr, len: usize) -> Vec<u8> {
        self.buffer.read_through(addr, len, &self.media)
    }

    /// [`peek`](Self::peek) into a caller-provided buffer — allocation-free
    /// bulk peeks for differential digests that scan a large footprint.
    pub fn peek_into(&self, addr: PhysAddr, out: &mut [u8]) {
        self.buffer.read_through_into(addr, out, &self.media);
    }

    /// Peeks one word without counting a read. Allocation-free: this is
    /// the engine's per-load hot path.
    pub fn peek_word(&self, addr: PhysAddr) -> Word {
        let mut b = [0u8; WORD_BYTES];
        self.buffer.read_through_into(addr, &mut b, &self.media);
        Word::from_le_bytes(b)
    }

    /// Drains the on-PM buffer to the media.
    pub fn flush_all(&mut self) {
        self.buffer.flush_all(&mut self.media);
    }

    /// Drains the on-PM buffer to the media, emitting a `BufferDrain`
    /// timeline event (arg = lines drained) when the probe wants events.
    pub fn flush_all_probed(&mut self, probe: &mut dyn silo_probe::Probe, at: u64) {
        let drained = self.buffer.occupancy() as u64;
        self.buffer.flush_all(&mut self.media);
        if drained > 0 && probe.wants_events() {
            probe.event(silo_probe::ProbeEvent {
                at,
                core: None,
                kind: silo_probe::ProbeEventKind::BufferDrain,
                arg: drained,
            });
        }
    }

    /// A snapshot of all traffic counters.
    pub fn stats(&self) -> PmStats {
        PmStats {
            accepted_writes: self.accepted_writes,
            accepted_bytes: self.accepted_bytes,
            data_region_writes: self.data_region_writes,
            log_region_writes: self.log_region_writes,
            media_line_writes: self.media.line_writes(),
            media_bits_programmed: self.media.bits_programmed(),
            dcw_suppressed: self.media.dcw_suppressed(),
            coalesced_hits: self.buffer.coalesced_hits(),
            buffer_fills: self.buffer.fills(),
            buffer_forced_drains: self.buffer.forced_drains(),
            reads: self.reads,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &PmDeviceConfig {
        &self.config
    }

    /// Per-line wear counters (endurance analysis; see
    /// [`WearTracker`](crate::WearTracker)).
    pub fn wear(&self) -> &crate::WearTracker {
        self.media.wear()
    }

    /// Arms an event-indexed crash point: power trips when the total
    /// durability-event count reaches `n`. The N-th event is the last to
    /// complete; everything after it drops. `n = 0` trips immediately —
    /// power fails before anything runs.
    pub fn arm_crash_at_event(&mut self, n: u64) {
        self.crash_at_event = Some(n);
        if n <= self.events.total() {
            self.tripped = true;
        }
    }

    /// Counts one durability event while power is on, returning whether
    /// the device is (now) tripped. Events are not counted on battery or
    /// once tripped; recovery counts only its own `RecoveryStep`s.
    pub fn note_event(&mut self, kind: EventKind) -> bool {
        if self.tripped {
            return true;
        }
        match (self.power, kind) {
            (Power::On, k) if k != EventKind::RecoveryStep => {
                self.events.bump(k);
                if self.crash_at_event == Some(self.events.total()) {
                    self.tripped = true;
                }
            }
            (Power::Recovery, EventKind::RecoveryStep) => {
                self.events.bump(kind);
                if self.recovery_trip_at == Some(self.events.recovery_steps) {
                    self.tripped = true;
                }
            }
            _ => {}
        }
        self.tripped
    }

    /// The durability events counted so far.
    pub fn events(&self) -> EventCounters {
        self.events
    }

    /// Whether power has failed: subsequent writes drop silently.
    pub fn power_tripped(&self) -> bool {
        self.tripped
    }

    /// Writes (and bytes) silently dropped after power failure.
    pub fn dropped(&self) -> (u64, u64) {
        (self.dropped_writes, self.dropped_bytes)
    }

    /// Crash-time discard of an uncommitted persistence-domain buffer
    /// entry: reverts the logical contents at `addr` to `bytes`, the
    /// image from before the discarded write. This models controllers
    /// that tag buffered lines with a transaction (LAD's MC buffer,
    /// paper §V) — power failure invalidates the tags, so writes the
    /// simulator already performed eagerly on the media were never
    /// architecturally valid. A bookkeeping rollback, not a new program:
    /// no events, no traffic counters, no fault-model budget.
    pub fn discard_to(&mut self, addr: PhysAddr, bytes: &[u8]) {
        self.buffer.patch_if_staged(addr, bytes);
        self.media.revert(addr, bytes);
    }

    /// Switches to residual-energy operation after power loss: staged
    /// writes become unbounded (charged at [`battery_drain`]
    /// (Self::battery_drain)), bypass writes charge `fault`'s byte budget
    /// immediately, and the armed crash point no longer fires.
    pub fn begin_battery(&mut self, fault: &FaultModel) {
        self.power = Power::Battery;
        self.tripped = false;
        self.battery_remaining = fault.battery_budget_bytes.unwrap_or(u64::MAX);
        self.torn_keep = fault.torn_line_keep_bytes;
    }

    /// The final ADR drain on residual energy: pushes staged lines to the
    /// media within the remaining budget (applying any armed torn-line
    /// fault), then the device goes dark — every later write drops until
    /// [`begin_recovery`](Self::begin_recovery).
    pub fn battery_drain(&mut self) -> DrainReport {
        let report =
            self.buffer
                .crash_drain(&mut self.media, self.battery_remaining, self.torn_keep);
        self.battery_remaining = 0;
        self.torn_keep = None;
        self.tripped = true;
        report
    }

    /// Restores power for recovery. Each accepted write counts one
    /// `RecoveryStep` event; if `crash_after_steps` is set, power trips
    /// again right after that many steps — the double-crash fault.
    pub fn begin_recovery(&mut self, crash_after_steps: Option<u64>) {
        self.power = Power::Recovery;
        self.tripped = false;
        self.recovery_trip_at = crash_after_steps.map(|n| self.events.recovery_steps + n);
    }

    /// Ends recovery: normal powered operation resumes, with the crash
    /// point disarmed.
    pub fn end_recovery(&mut self) {
        self.power = Power::On;
        self.tripped = false;
        self.crash_at_event = None;
        self.recovery_trip_at = None;
        self.battery_remaining = u64::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        pm.write(PhysAddr::new(100), &[1, 2, 3]);
        assert_eq!(pm.read(PhysAddr::new(100), 3), vec![1, 2, 3]);
        assert_eq!(pm.stats().reads, 1);
    }

    #[test]
    fn word_round_trip() {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        pm.write_word(PhysAddr::new(8), Word::new(0xfeed));
        assert_eq!(pm.read_word(PhysAddr::new(8)), Word::new(0xfeed));
        assert_eq!(pm.read_u64(PhysAddr::new(8)), 0xfeed);
    }

    #[test]
    fn region_classification() {
        let mut pm = PmDevice::new(PmDeviceConfig {
            log_region_start: Some(1 << 20),
            ..PmDeviceConfig::default()
        });
        pm.write(PhysAddr::new(0), &[1]);
        pm.write(PhysAddr::new(1 << 20), &[1]);
        pm.write(PhysAddr::new((1 << 20) + 64), &[1]);
        let s = pm.stats();
        assert_eq!(s.data_region_writes, 1);
        assert_eq!(s.log_region_writes, 2);
        assert_eq!(s.accepted_writes, 3);
    }

    #[test]
    fn no_boundary_counts_everything_as_data() {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        pm.write(PhysAddr::new(1 << 30), &[1]);
        assert_eq!(pm.stats().data_region_writes, 1);
        assert_eq!(pm.stats().log_region_writes, 0);
    }

    #[test]
    fn peek_does_not_count_reads() {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        pm.write_word(PhysAddr::new(0), Word::new(5));
        assert_eq!(pm.peek_word(PhysAddr::new(0)), Word::new(5));
        assert_eq!(pm.stats().reads, 0);
    }

    #[test]
    fn evicted_cacheline_after_in_place_update_is_dcw_free() {
        // The §III-D scenario: Silo's IPU wrote the words; the later
        // cacheline eviction carries identical bytes, so the media is not
        // programmed again.
        let mut pm = PmDevice::new(PmDeviceConfig {
            buffer_lines: 1, // force immediate drains so both writes hit media
            ..PmDeviceConfig::default()
        });
        // IPU: two modified words of line 0.
        pm.write_word(PhysAddr::new(0), Word::new(0xa1));
        pm.write_word(PhysAddr::new(8), Word::new(0xb2));
        // Unrelated line allocation drains line 0 to media.
        pm.write(PhysAddr::new(4096), &[1u8; 8]);
        let before = pm.stats().media_line_writes;
        // CE: the full 64B line with the same two modified words; other
        // words still zero (matching fresh media).
        let mut line = [0u8; 64];
        line[0..8].copy_from_slice(&Word::new(0xa1).to_le_bytes());
        line[8..16].copy_from_slice(&Word::new(0xb2).to_le_bytes());
        pm.write(PhysAddr::new(0), &line);
        pm.write(PhysAddr::new(8192), &[1u8; 8]); // drain line 0 again
        let after = pm.stats().media_line_writes;
        assert_eq!(after, before + 1, "only the 8192 drain programs media");
        assert!(pm.stats().dcw_suppressed >= 1);
    }

    #[test]
    fn write_through_programs_media_immediately() {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        let n = pm.write_through(PhysAddr::new(0), &[1u8; 8]);
        assert_eq!(n, 1);
        assert_eq!(pm.stats().media_line_writes, 1);
        assert_eq!(pm.read(PhysAddr::new(0), 8), vec![1u8; 8]);
    }

    #[test]
    fn write_through_does_not_coalesce_repeats() {
        // The baseline behaviour: flushing the same line per store costs a
        // media program per flush (the paper's Base traffic model).
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        let mut line = [0u8; 64];
        for i in 0..4 {
            line[i] = i as u8 + 1;
            pm.write_through(PhysAddr::new(0), &line);
        }
        assert_eq!(pm.stats().media_line_writes, 4);
    }

    #[test]
    fn write_through_identical_is_dcw_suppressed() {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        assert_eq!(pm.write_through(PhysAddr::new(0), &[5u8; 8]), 1);
        assert_eq!(pm.write_through(PhysAddr::new(0), &[5u8; 8]), 0);
    }

    #[test]
    fn write_through_splits_across_buffer_lines() {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        let n = pm.write_through(PhysAddr::new(250), &[9u8; 12]);
        assert_eq!(n, 2);
        assert_eq!(pm.read(PhysAddr::new(250), 12), vec![9u8; 12]);
    }

    #[test]
    fn write_through_keeps_staged_lines_coherent() {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        pm.write(PhysAddr::new(0), &[1u8; 8]); // staged
        pm.write_through(PhysAddr::new(0), &[2u8; 8]); // bypass
                                                       // Read must see the write-through bytes, not the stale staged copy.
        assert_eq!(pm.read(PhysAddr::new(0), 8), vec![2u8; 8]);
        pm.flush_all();
        assert_eq!(pm.read(PhysAddr::new(0), 8), vec![2u8; 8]);
    }

    #[test]
    fn flush_all_persists_logical_contents() {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        pm.write(PhysAddr::new(0), &[7; 16]);
        pm.flush_all();
        assert_eq!(pm.read(PhysAddr::new(0), 16), vec![7; 16]);
        assert_eq!(pm.stats().media_line_writes, 1);
    }

    #[test]
    fn wear_tracks_media_programs() {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        pm.write_through(PhysAddr::new(0), &[1u8; 8]);
        pm.write_through(PhysAddr::new(0), &[2u8; 8]);
        pm.write_through(PhysAddr::new(256), &[1u8; 8]);
        assert_eq!(pm.wear().total_programs(), 3);
        assert_eq!(pm.wear().max_wear(), 2);
        assert_eq!(pm.wear().lines_touched(), 2);
    }

    #[test]
    fn events_count_and_trip_at_armed_point() {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        pm.arm_crash_at_event(2);
        assert!(!pm.note_event(EventKind::Store));
        assert!(pm.note_event(EventKind::WpqAdmit), "second event trips");
        assert!(pm.power_tripped());
        // Tripped: no further counting, writes drop.
        assert!(pm.note_event(EventKind::Store));
        assert_eq!(pm.events().total(), 2);
        pm.write(PhysAddr::new(0), &[1; 8]);
        assert_eq!(pm.dropped(), (1, 8));
        assert_eq!(pm.peek(PhysAddr::new(0), 8), vec![0; 8]);
    }

    #[test]
    fn log_region_writes_count_log_drain_events() {
        let mut pm = PmDevice::new(PmDeviceConfig {
            log_region_start: Some(1 << 20),
            ..PmDeviceConfig::default()
        });
        pm.write(PhysAddr::new(0), &[1; 8]);
        pm.write(PhysAddr::new(1 << 20), &[1; 8]);
        pm.write_through(PhysAddr::new((1 << 20) + 256), &[1; 8]);
        let e = pm.events();
        assert_eq!(e.log_drains, 2);
        assert!(e.line_programs >= 1, "write_through programs the media");
    }

    #[test]
    fn battery_charges_bypass_writes_and_drains_staged() {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        pm.write(PhysAddr::new(0), &[7; 8]); // staged pre-crash
        pm.begin_battery(&FaultModel::bounded_battery(16));
        pm.write_through(PhysAddr::new(256), &[8; 8]); // charges 8 bytes
        pm.write(PhysAddr::new(512), &[9; 8]); // staged, charged at drain
        let report = pm.battery_drain();
        // 8 bytes of budget left for 16 staged bytes: oldest line drains.
        assert_eq!(report.drained_lines, 1);
        assert_eq!(report.discarded_lines, 1);
        assert!(pm.power_tripped());
        assert_eq!(pm.peek(PhysAddr::new(0), 8), vec![7; 8]);
        assert_eq!(pm.peek(PhysAddr::new(256), 8), vec![8; 8]);
        assert_eq!(pm.peek(PhysAddr::new(512), 8), vec![0; 8], "lost");
    }

    #[test]
    fn battery_exhaustion_drops_bypass_suffix() {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        pm.begin_battery(&FaultModel::bounded_battery(4));
        let n = pm.write_through(PhysAddr::new(0), &[5; 8]);
        assert!(n >= 1, "the first 4 bytes still program");
        assert!(pm.power_tripped());
        assert_eq!(pm.peek(PhysAddr::new(0), 8), vec![5, 5, 5, 5, 0, 0, 0, 0]);
        pm.write_through(PhysAddr::new(64), &[6; 8]);
        assert_eq!(pm.peek(PhysAddr::new(64), 8), vec![0; 8]);
    }

    #[test]
    fn recovery_steps_count_and_double_crash_trips() {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        pm.begin_battery(&FaultModel::perfect_adr());
        pm.battery_drain();
        pm.begin_recovery(Some(2));
        pm.write(PhysAddr::new(0), &[1; 8]);
        pm.write(PhysAddr::new(8), &[2; 8]);
        assert!(pm.power_tripped(), "second recovery step trips");
        pm.write(PhysAddr::new(16), &[3; 8]);
        assert_eq!(pm.events().recovery_steps, 2);
        // The first two steps persisted (they are staged in ADR); the
        // third dropped.
        assert_eq!(pm.peek(PhysAddr::new(8), 8), vec![2; 8]);
        assert_eq!(pm.peek(PhysAddr::new(16), 8), vec![0; 8]);
        pm.end_recovery();
        assert!(!pm.power_tripped());
        pm.write(PhysAddr::new(16), &[3; 8]);
        assert_eq!(pm.peek(PhysAddr::new(16), 8), vec![3; 8]);
    }

    #[test]
    fn clean_operation_is_unaffected_by_event_counting() {
        let mut a = PmDevice::new(PmDeviceConfig::default());
        let mut b = PmDevice::new(PmDeviceConfig::default());
        b.note_event(EventKind::Store);
        b.note_event(EventKind::WpqAdmit);
        for pm in [&mut a, &mut b] {
            pm.write(PhysAddr::new(0), &[1; 64]);
            pm.write_through(PhysAddr::new(256), &[2; 8]);
            pm.flush_all();
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.peek(PhysAddr::new(0), 64), b.peek(PhysAddr::new(0), 64));
    }

    #[test]
    fn stats_accumulate_bytes() {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        pm.write(PhysAddr::new(0), &[0; 8]);
        pm.write(PhysAddr::new(64), &[0; 64]);
        assert_eq!(pm.stats().accepted_bytes, 72);
        assert_eq!(pm.stats().accepted_writes, 2);
    }
}

silo_types::impl_snapshot_via_clone!(PmDevice);
