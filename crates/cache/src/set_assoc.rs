//! A single set-associative, write-back cache level (metadata only).

use silo_types::{LineAddr, LINE_BYTES};

/// Geometry of one cache level.
///
/// # Examples
///
/// ```
/// use silo_cache::CacheConfig;
///
/// let l1 = CacheConfig::new(32 * 1024, 8);
/// assert_eq!(l1.sets(), 64); // 32 KB / (64 B * 8 ways)
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// Creates a geometry; validates that it divides into whole sets.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a positive multiple of
    /// `ways * LINE_BYTES`.
    pub fn new(size_bytes: usize, ways: usize) -> Self {
        assert!(ways > 0, "cache needs at least one way");
        assert!(
            size_bytes > 0 && size_bytes.is_multiple_of(ways * LINE_BYTES),
            "capacity {size_bytes} is not a multiple of ways*line ({ways}*{LINE_BYTES})"
        );
        CacheConfig { size_bytes, ways }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * LINE_BYTES)
    }

    /// Total number of lines.
    pub fn lines(&self) -> usize {
        self.size_bytes / LINE_BYTES
    }
}

/// A line evicted to make room for a fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// The victim line's address.
    pub line: LineAddr,
    /// Whether the victim was dirty (needs writing back downstream).
    pub dirty: bool,
}

/// The outcome of one access to a cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was already present.
    pub hit: bool,
    /// A victim displaced by the fill (misses only).
    pub evicted: Option<Evicted>,
}

#[derive(Clone, Copy, Debug)]
struct Way {
    tag: u64, // full line index; the set already encodes the low bits
    dirty: bool,
    lru: u64,
}

/// One set-associative, write-back, write-allocate cache level with true
/// LRU replacement. Tracks tags and dirty bits only; data values live
/// elsewhere (see the crate docs).
///
/// # Examples
///
/// ```
/// use silo_cache::{CacheConfig, SetAssocCache};
/// use silo_types::{LineAddr, PhysAddr};
///
/// let mut c = SetAssocCache::new(CacheConfig::new(4096, 4));
/// let line = LineAddr::containing(PhysAddr::new(0));
/// assert!(!c.access(line, true).hit);
/// assert!(c.access(line, false).hit);
/// assert!(c.is_dirty(line));
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    config: CacheConfig,
    /// All ways in one flat slab, set-major: set `s` owns
    /// `ways[s * config.ways .. (s + 1) * config.ways]`. One allocation
    /// per cache level — constructing the Table II hierarchy used to make
    /// one `Vec` per set (8192 for the L3 alone), a real cost for sweeps
    /// that build thousands of short-lived machines (crashfuzz).
    ways: Vec<Option<Way>>,
    tick: u64,
    hits: u64,
    misses: u64,
    dirty_evictions: u64,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        SetAssocCache {
            config,
            ways: vec![None; config.ways * config.sets()],
            tick: 0,
            hits: 0,
            misses: 0,
            dirty_evictions: 0,
        }
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line.index() % self.config.sets() as u64) as usize
    }

    /// Index range of `line`'s set within the flat `ways` slab.
    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let w = self.config.ways;
        let s = self.set_of(line);
        s * w..(s + 1) * w
    }

    /// Accesses `line`, allocating on miss (write-allocate for both reads
    /// and writes). `is_write` marks the line dirty. Returns the hit/miss
    /// outcome and any displaced victim.
    pub fn access(&mut self, line: LineAddr, is_write: bool) -> AccessOutcome {
        self.tick += 1;
        let tick = self.tick;
        let r = self.set_range(line);
        let ways = &mut self.ways[r];

        if let Some(way) = ways.iter_mut().flatten().find(|w| w.tag == line.index()) {
            way.lru = tick;
            way.dirty |= is_write;
            self.hits += 1;
            return AccessOutcome {
                hit: true,
                evicted: None,
            };
        }

        self.misses += 1;
        // Prefer an empty way; otherwise evict the least recently used.
        let victim_idx = match ways.iter().position(|w| w.is_none()) {
            Some(i) => i,
            None => ways
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.expect("no empty ways here").lru)
                .map(|(i, _)| i)
                .expect("ways is non-empty"),
        };
        let evicted = ways[victim_idx].map(|w| {
            if w.dirty {
                self.dirty_evictions += 1;
            }
            Evicted {
                line: LineAddr::containing(silo_types::PhysAddr::new(w.tag * LINE_BYTES as u64)),
                dirty: w.dirty,
            }
        });
        ways[victim_idx] = Some(Way {
            tag: line.index(),
            dirty: is_write,
            lru: tick,
        });
        AccessOutcome {
            hit: false,
            evicted,
        }
    }

    /// Installs `line` without counting a demand hit or miss — the path a
    /// writeback from an upper level takes (e.g. a dirty L1 victim landing
    /// in L2). If the line is already present its dirty bit is OR-ed;
    /// otherwise it is allocated, possibly displacing a victim.
    pub fn fill(&mut self, line: LineAddr, dirty: bool) -> Option<Evicted> {
        self.tick += 1;
        let tick = self.tick;
        let r = self.set_range(line);
        let ways = &mut self.ways[r];
        if let Some(way) = ways.iter_mut().flatten().find(|w| w.tag == line.index()) {
            way.lru = tick;
            way.dirty |= dirty;
            return None;
        }
        let victim_idx = match ways.iter().position(|w| w.is_none()) {
            Some(i) => i,
            None => ways
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.expect("no empty ways here").lru)
                .map(|(i, _)| i)
                .expect("ways is non-empty"),
        };
        let evicted = ways[victim_idx].map(|w| {
            if w.dirty {
                self.dirty_evictions += 1;
            }
            Evicted {
                line: LineAddr::containing(silo_types::PhysAddr::new(w.tag * LINE_BYTES as u64)),
                dirty: w.dirty,
            }
        });
        ways[victim_idx] = Some(Way {
            tag: line.index(),
            dirty,
            lru: tick,
        });
        evicted
    }

    /// Whether the line is present (no LRU update, no allocation).
    pub fn probe(&self, line: LineAddr) -> bool {
        self.ways[self.set_range(line)]
            .iter()
            .flatten()
            .any(|w| w.tag == line.index())
    }

    /// Whether the line is present and dirty.
    pub fn is_dirty(&self, line: LineAddr) -> bool {
        self.ways[self.set_range(line)]
            .iter()
            .flatten()
            .any(|w| w.tag == line.index() && w.dirty)
    }

    /// Clears the dirty bit if the line is present (a clwb-style flush
    /// writes the line back without invalidating it). Returns whether the
    /// line was dirty.
    pub fn clean(&mut self, line: LineAddr) -> bool {
        let r = self.set_range(line);
        for way in self.ways[r].iter_mut().flatten() {
            if way.tag == line.index() {
                let was = way.dirty;
                way.dirty = false;
                return was;
            }
        }
        false
    }

    /// Removes the line if present; returns whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let r = self.set_range(line);
        for way in self.ways[r].iter_mut() {
            if let Some(w) = way {
                if w.tag == line.index() {
                    let dirty = w.dirty;
                    *way = None;
                    return dirty;
                }
            }
        }
        false
    }

    /// All currently dirty lines, in unspecified order.
    pub fn dirty_lines(&self) -> Vec<LineAddr> {
        self.ways
            .iter()
            .flatten()
            .filter(|w| w.dirty)
            .map(|w| LineAddr::containing(silo_types::PhysAddr::new(w.tag * LINE_BYTES as u64)))
            .collect()
    }

    /// Clears every dirty bit and returns the lines that were dirty (a
    /// force-write-back sweep, as FWB performs periodically).
    pub fn clean_all(&mut self) -> Vec<LineAddr> {
        let mut out = Vec::new();
        for way in self.ways.iter_mut().flatten() {
            if way.dirty {
                way.dirty = false;
                out.push(LineAddr::containing(silo_types::PhysAddr::new(
                    way.tag * LINE_BYTES as u64,
                )));
            }
        }
        out
    }

    /// Drops every line (volatile cache contents at a power failure).
    pub fn invalidate_all(&mut self) {
        self.ways.fill(None);
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.ways.iter().flatten().count()
    }

    /// (hits, misses, dirty evictions) counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.dirty_evictions)
    }

    /// The geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }
}

/// Sparse captured state of one [`SetAssocCache`] level.
///
/// The flat `ways` slab is dense in slots but sparse in residency at
/// checkpoint time relative to its full size (the Table II L3 alone is
/// 131 072 slots ≈ 4 MB when cloned wholesale), so the snapshot keeps only
/// the occupied slots plus the LRU/counter state; restore clears the slab
/// with one `fill(None)` and rewrites the occupied entries.
#[derive(Clone, Debug)]
pub struct CacheLevelState {
    config: CacheConfig,
    occupied: Vec<(u32, Way)>,
    tick: u64,
    hits: u64,
    misses: u64,
    dirty_evictions: u64,
}

impl silo_types::Snapshot for SetAssocCache {
    type State = CacheLevelState;

    fn snapshot(&self) -> CacheLevelState {
        CacheLevelState {
            config: self.config,
            occupied: self
                .ways
                .iter()
                .enumerate()
                .filter_map(|(i, w)| w.map(|w| (i as u32, w)))
                .collect(),
            tick: self.tick,
            hits: self.hits,
            misses: self.misses,
            dirty_evictions: self.dirty_evictions,
        }
    }

    fn restore(&mut self, state: &CacheLevelState) {
        assert_eq!(
            self.config, state.config,
            "cache snapshot restored into a different geometry"
        );
        self.ways.fill(None);
        for &(slot, way) in &state.occupied {
            self.ways[slot as usize] = Some(way);
        }
        self.tick = state.tick;
        self.hits = state.hits;
        self.misses = state.misses;
        self.dirty_evictions = state.dirty_evictions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_types::PhysAddr;

    fn line(n: u64) -> LineAddr {
        LineAddr::containing(PhysAddr::new(n * LINE_BYTES as u64))
    }

    /// 2 sets × 2 ways, so lines with even index map to set 0.
    fn tiny() -> SetAssocCache {
        SetAssocCache::new(CacheConfig::new(4 * LINE_BYTES, 2))
    }

    #[test]
    fn geometry() {
        let c = CacheConfig::new(32 * 1024, 8);
        assert_eq!(c.sets(), 64);
        assert_eq!(c.lines(), 512);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn invalid_geometry_rejected() {
        let _ = CacheConfig::new(100, 3);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(line(0), false).hit);
        assert!(c.access(line(0), false).hit);
        let (h, m, _) = c.counters();
        assert_eq!((h, m), (1, 1));
    }

    #[test]
    fn write_sets_dirty_and_read_does_not() {
        let mut c = tiny();
        c.access(line(0), false);
        assert!(!c.is_dirty(line(0)));
        c.access(line(0), true);
        assert!(c.is_dirty(line(0)));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Set 0 holds even line indices; fill both ways.
        c.access(line(0), true);
        c.access(line(2), false);
        c.access(line(0), false); // touch 0, making 2 the LRU victim
        let out = c.access(line(4), false);
        assert!(!out.hit);
        let ev = out.evicted.expect("set was full");
        assert_eq!(ev.line, line(2));
        assert!(!ev.dirty);
        assert!(c.probe(line(0)));
        assert!(!c.probe(line(2)));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = tiny();
        c.access(line(0), true);
        c.access(line(2), true);
        let ev = c.access(line(4), false).evicted.expect("eviction");
        assert!(ev.dirty);
        assert_eq!(c.counters().2, 1);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        // Odd line indices map to set 1 and never evict set 0 residents.
        c.access(line(0), false);
        c.access(line(1), false);
        c.access(line(3), false);
        c.access(line(5), false);
        assert!(c.probe(line(0)));
    }

    #[test]
    fn clean_clears_dirty_without_invalidating() {
        let mut c = tiny();
        c.access(line(0), true);
        assert!(c.clean(line(0)));
        assert!(c.probe(line(0)));
        assert!(!c.is_dirty(line(0)));
        assert!(!c.clean(line(0))); // already clean
        assert!(!c.clean(line(2))); // absent
    }

    #[test]
    fn invalidate_removes_and_reports_dirty() {
        let mut c = tiny();
        c.access(line(0), true);
        assert!(c.invalidate(line(0)));
        assert!(!c.probe(line(0)));
        assert!(!c.invalidate(line(0)));
    }

    #[test]
    fn dirty_lines_and_clean_all() {
        let mut c = tiny();
        c.access(line(0), true);
        c.access(line(1), true);
        c.access(line(2), false);
        let mut dirty = c.dirty_lines();
        dirty.sort();
        assert_eq!(dirty, vec![line(0), line(1)]);
        let mut swept = c.clean_all();
        swept.sort();
        assert_eq!(swept, vec![line(0), line(1)]);
        assert!(c.dirty_lines().is_empty());
    }

    #[test]
    fn invalidate_all_empties() {
        let mut c = tiny();
        c.access(line(0), true);
        c.access(line(1), true);
        c.invalidate_all();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn fill_does_not_count_demand_stats() {
        let mut c = tiny();
        c.fill(line(0), true);
        let (h, m, _) = c.counters();
        assert_eq!((h, m), (0, 0));
        assert!(c.is_dirty(line(0)));
    }

    #[test]
    fn fill_ors_dirty_into_existing_line() {
        let mut c = tiny();
        c.access(line(0), false);
        assert!(!c.is_dirty(line(0)));
        assert!(c.fill(line(0), true).is_none());
        assert!(c.is_dirty(line(0)));
        // Filling dirty=false must not clear an existing dirty bit.
        c.fill(line(0), false);
        assert!(c.is_dirty(line(0)));
    }

    #[test]
    fn fill_evicts_when_set_full() {
        let mut c = tiny();
        c.access(line(0), true);
        c.access(line(2), false);
        let ev = c.fill(line(4), false).expect("eviction");
        assert_eq!(ev.line, line(0));
        assert!(ev.dirty);
    }

    #[test]
    fn probe_does_not_perturb_lru() {
        let mut c = tiny();
        c.access(line(0), false);
        c.access(line(2), false);
        c.probe(line(0)); // must NOT refresh line 0
                          // LRU is line 0 (probe didn't touch it): it is the victim.
        let ev = c.access(line(4), false).evicted.expect("eviction");
        assert_eq!(ev.line, line(0));
    }
}
