//! Cache-hierarchy simulator for the Silo evaluation platform.
//!
//! Stand-in for the gem5 memory hierarchy of paper Table II: per-core
//! private L1D (32 KB, 8-way, 4 cycles) and L2 (256 KB, 8-way, 12 cycles),
//! and a shared L3 (8 MB, 16-way, 28 cycles), all with 64 B lines, LRU
//! replacement, and write-back / write-allocate policy.
//!
//! The caches are **metadata-only**: they track tags and dirty bits and
//! report latencies, fills and evictions; data values live in the
//! simulator's architectural memory and in the PM device. This split is
//! exactly what the crash model needs — cache contents are volatile and
//! vanish at a power failure, while the PM device holds whatever was
//! actually written back.
//!
//! Two behaviours matter to the logging schemes built on top:
//!
//! * **Natural evictions** ([`HierarchyAccess::pm_writebacks`]) — dirty
//!   lines pushed out of L3 to the memory controller; these are the evicted
//!   cachelines that set Silo's flush-bit (paper §III-D).
//! * **Explicit flushes** ([`CacheHierarchy::flush_line`],
//!   [`CacheHierarchy::core_l1_dirty`]) — the clwb-style line flush Base
//!   and FWB issue per store, and the L1-drain LAD performs at Prepare.
//!
//! # Examples
//!
//! ```
//! use silo_cache::{CacheHierarchy, HierarchyConfig};
//! use silo_types::{CoreId, LineAddr, PhysAddr};
//!
//! let mut h = CacheHierarchy::new(HierarchyConfig::table_ii(1));
//! let line = LineAddr::containing(PhysAddr::new(0x1000));
//! let first = h.access(CoreId::new(0), line, true);
//! assert!(first.filled_from_memory); // cold miss
//! let second = h.access(CoreId::new(0), line, true);
//! assert!(!second.filled_from_memory); // L1 hit
//! assert!(second.latency < first.latency);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hierarchy;
mod set_assoc;

pub use hierarchy::{
    CacheHierarchy, CacheHierarchyState, HierarchyAccess, HierarchyConfig, HierarchyStats,
};
pub use set_assoc::{AccessOutcome, CacheConfig, CacheLevelState, Evicted, SetAssocCache};
