//! The three-level hierarchy of paper Table II.

use silo_types::{CoreId, Cycles, LineAddr, Snapshot};

use crate::set_assoc::{CacheConfig, CacheLevelState, SetAssocCache};

/// Configuration of the whole hierarchy.
///
/// [`HierarchyConfig::table_ii`] reproduces paper Table II exactly:
/// L1D 32 KB / 8-way / 4 cycles, L2 256 KB / 8-way / 12 cycles (both
/// private), L3 8 MB / 16-way / 28 cycles (shared), 64 B lines everywhere.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Number of cores (each gets a private L1D and L2).
    pub cores: usize,
    /// Private L1 data cache geometry.
    pub l1: CacheConfig,
    /// L1 hit latency.
    pub l1_latency: Cycles,
    /// Private L2 geometry.
    pub l2: CacheConfig,
    /// L2 lookup latency (added on L1 miss).
    pub l2_latency: Cycles,
    /// Shared L3 geometry.
    pub l3: CacheConfig,
    /// L3 lookup latency (added on L2 miss).
    pub l3_latency: Cycles,
}

impl HierarchyConfig {
    /// The paper Table II configuration for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn table_ii(cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        HierarchyConfig {
            cores,
            l1: CacheConfig::new(32 * 1024, 8),
            l1_latency: Cycles::new(4),
            l2: CacheConfig::new(256 * 1024, 8),
            l2_latency: Cycles::new(12),
            l3: CacheConfig::new(8 * 1024 * 1024, 16),
            l3_latency: Cycles::new(28),
        }
    }

    /// Latency of an explicit line flush travelling L1 → L2 → L3 → MC
    /// (the full lookup chain; the write itself is accounted at the MC).
    pub fn flush_chain_latency(&self) -> Cycles {
        self.l1_latency + self.l2_latency + self.l3_latency
    }
}

/// The result of one load/store walking the hierarchy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HierarchyAccess {
    /// Lookup latency across the levels walked (memory latency, if any, is
    /// added by the memory-controller model).
    pub latency: Cycles,
    /// The access missed everywhere and must fill from PM.
    pub filled_from_memory: bool,
    /// Level the access hit in: 1, 2, 3, or 4 for memory.
    pub hit_level: u8,
    /// Dirty lines evicted from L3 toward the memory controller as a
    /// side effect — the "evicted cachelines" of paper §III-D.
    pub pm_writebacks: Vec<LineAddr>,
}

/// Aggregate hit/miss counters per level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// (hits, misses) of all L1 caches.
    pub l1: (u64, u64),
    /// (hits, misses) of all L2 caches.
    pub l2: (u64, u64),
    /// (hits, misses) of the shared L3.
    pub l3: (u64, u64),
    /// Dirty lines evicted from L3 to PM.
    pub pm_writebacks: u64,
}

impl HierarchyStats {
    /// The counters as a JSON object (experiment reports).
    pub fn to_json(&self) -> silo_types::JsonValue {
        let level = |(hits, misses): (u64, u64)| {
            silo_types::JsonValue::object()
                .field("hits", hits)
                .field("misses", misses)
                .build()
        };
        silo_types::JsonValue::object()
            .field("l1", level(self.l1))
            .field("l2", level(self.l2))
            .field("l3", level(self.l3))
            .field("pm_writebacks", self.pm_writebacks)
            .build()
    }

    /// Rebuilds a snapshot from its [`HierarchyStats::to_json`] form.
    /// `None` if any counter is missing or not an exact integer (the
    /// result store treats that as a corrupt entry and recomputes).
    pub fn from_json(v: &silo_types::JsonValue) -> Option<HierarchyStats> {
        let level = |key: &str| {
            let obj = v.get(key)?;
            Some((obj.get("hits")?.as_u64()?, obj.get("misses")?.as_u64()?))
        };
        Some(HierarchyStats {
            l1: level("l1")?,
            l2: level("l2")?,
            l3: level("l3")?,
            pm_writebacks: v.get("pm_writebacks")?.as_u64()?,
        })
    }
}

impl std::ops::Sub for HierarchyStats {
    type Output = HierarchyStats;

    /// Saturating per-field difference: delta pairs are only approximately
    /// nested (workload streams need not be prefix-extensive), so each
    /// counter saturates at zero rather than panicking on underflow.
    fn sub(self, r: HierarchyStats) -> HierarchyStats {
        let level =
            |a: (u64, u64), b: (u64, u64)| (a.0.saturating_sub(b.0), a.1.saturating_sub(b.1));
        HierarchyStats {
            l1: level(self.l1, r.l1),
            l2: level(self.l2, r.l2),
            l3: level(self.l3, r.l3),
            pm_writebacks: self.pm_writebacks.saturating_sub(r.pm_writebacks),
        }
    }
}

/// Per-core private L1D/L2 plus shared L3, write-back / write-allocate,
/// with dirty victims cascading down the hierarchy and out to PM.
///
/// Coherence note: the paper delegates isolation to software locking
/// (§III-A) and Silo's logging path bypasses the cache hierarchy entirely
/// (§III-D, "Cache Coherence"), so transactional footprints are disjoint
/// across threads by construction; the model therefore omits invalidation
/// traffic between private caches.
#[derive(Clone, Debug)]
pub struct CacheHierarchy {
    config: HierarchyConfig,
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    l3: SetAssocCache,
    pm_writebacks: u64,
}

impl CacheHierarchy {
    /// Creates an empty hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        CacheHierarchy {
            l1: (0..config.cores)
                .map(|_| SetAssocCache::new(config.l1))
                .collect(),
            l2: (0..config.cores)
                .map(|_| SetAssocCache::new(config.l2))
                .collect(),
            l3: SetAssocCache::new(config.l3),
            config,
            pm_writebacks: 0,
        }
    }

    /// Performs one load (`is_write = false`) or store (`true`) by `core`
    /// to the cacheline `line`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: CoreId, line: LineAddr, is_write: bool) -> HierarchyAccess {
        let c = core.as_usize();
        assert!(c < self.config.cores, "core {c} out of range");
        let mut pm_writebacks = Vec::new();
        let mut latency = self.config.l1_latency;

        let r1 = self.l1[c].access(line, is_write);
        // A dirty L1 victim writes back into L2 and may cascade further.
        if let Some(ev) = r1.evicted {
            if ev.dirty {
                self.writeback_to_l2(c, ev.line, &mut pm_writebacks);
            }
        }
        if r1.hit {
            return HierarchyAccess {
                latency,
                filled_from_memory: false,
                hit_level: 1,
                pm_writebacks,
            };
        }

        latency += self.config.l2_latency;
        let r2 = self.l2[c].access(line, false);
        if let Some(ev) = r2.evicted {
            if ev.dirty {
                self.writeback_to_l3(ev.line, &mut pm_writebacks);
            }
        }
        if r2.hit {
            return HierarchyAccess {
                latency,
                filled_from_memory: false,
                hit_level: 2,
                pm_writebacks,
            };
        }

        latency += self.config.l3_latency;
        let r3 = self.l3.access(line, false);
        if let Some(ev) = r3.evicted {
            if ev.dirty {
                self.pm_writebacks += 1;
                pm_writebacks.push(ev.line);
            }
        }
        HierarchyAccess {
            latency,
            filled_from_memory: !r3.hit,
            hit_level: if r3.hit { 3 } else { 4 },
            pm_writebacks,
        }
    }

    fn writeback_to_l2(&mut self, core: usize, line: LineAddr, out: &mut Vec<LineAddr>) {
        if let Some(ev) = self.l2[core].fill(line, true) {
            if ev.dirty {
                self.writeback_to_l3(ev.line, out);
            }
        }
    }

    fn writeback_to_l3(&mut self, line: LineAddr, out: &mut Vec<LineAddr>) {
        if let Some(ev) = self.l3.fill(line, true) {
            if ev.dirty {
                self.pm_writebacks += 1;
                out.push(ev.line);
            }
        }
    }

    /// Explicitly flushes one line (clwb semantics: write back, keep
    /// resident, clear dirty bits at every level). Returns `true` if any
    /// level held the line dirty — i.e. a PM write is actually needed.
    pub fn flush_line(&mut self, core: CoreId, line: LineAddr) -> bool {
        let c = core.as_usize();
        let mut dirty = self.l1[c].clean(line);
        dirty |= self.l2[c].clean(line);
        dirty |= self.l3.clean(line);
        dirty
    }

    /// Whether any level holds the line dirty for this core.
    pub fn line_dirty(&self, core: CoreId, line: LineAddr) -> bool {
        let c = core.as_usize();
        self.l1[c].is_dirty(line) || self.l2[c].is_dirty(line) || self.l3.is_dirty(line)
    }

    /// Dirty lines currently in `core`'s L1 (what LAD's Prepare phase must
    /// drain to the MC).
    pub fn core_l1_dirty(&self, core: CoreId) -> Vec<LineAddr> {
        self.l1[core.as_usize()].dirty_lines()
    }

    /// Cleans every dirty line in every cache and returns them (FWB's
    /// periodic force-write-back sweep). The caller writes them to PM.
    pub fn force_writeback_all(&mut self) -> Vec<LineAddr> {
        let mut lines = Vec::new();
        for l1 in &mut self.l1 {
            lines.extend(l1.clean_all());
        }
        for l2 in &mut self.l2 {
            lines.extend(l2.clean_all());
        }
        lines.extend(self.l3.clean_all());
        lines.sort();
        lines.dedup();
        lines
    }

    /// Drops all cache contents (volatile state lost at a power failure).
    pub fn invalidate_all(&mut self) {
        for l1 in &mut self.l1 {
            l1.invalidate_all();
        }
        for l2 in &mut self.l2 {
            l2.invalidate_all();
        }
        self.l3.invalidate_all();
    }

    /// All lines that are dirty anywhere in the hierarchy (volatile data
    /// that a crash would lose).
    pub fn all_dirty_lines(&self) -> Vec<LineAddr> {
        let mut lines = Vec::new();
        for l1 in &self.l1 {
            lines.extend(l1.dirty_lines());
        }
        for l2 in &self.l2 {
            lines.extend(l2.dirty_lines());
        }
        lines.extend(self.l3.dirty_lines());
        lines.sort();
        lines.dedup();
        lines
    }

    /// Aggregate counters.
    pub fn stats(&self) -> HierarchyStats {
        let sum2 = |caches: &[SetAssocCache]| {
            caches.iter().fold((0, 0), |(h, m), c| {
                let (ch, cm, _) = c.counters();
                (h + ch, m + cm)
            })
        };
        let (l3h, l3m, _) = self.l3.counters();
        HierarchyStats {
            l1: sum2(&self.l1),
            l2: sum2(&self.l2),
            l3: (l3h, l3m),
            pm_writebacks: self.pm_writebacks,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }
}

/// Captured state of a whole [`CacheHierarchy`]: one sparse
/// [`CacheLevelState`] per level plus the writeback counter.
#[derive(Clone, Debug)]
pub struct CacheHierarchyState {
    l1: Vec<CacheLevelState>,
    l2: Vec<CacheLevelState>,
    l3: CacheLevelState,
    pm_writebacks: u64,
}

impl Snapshot for CacheHierarchy {
    type State = CacheHierarchyState;

    fn snapshot(&self) -> CacheHierarchyState {
        CacheHierarchyState {
            l1: self.l1.iter().map(Snapshot::snapshot).collect(),
            l2: self.l2.iter().map(Snapshot::snapshot).collect(),
            l3: self.l3.snapshot(),
            pm_writebacks: self.pm_writebacks,
        }
    }

    fn restore(&mut self, state: &CacheHierarchyState) {
        assert_eq!(
            self.l1.len(),
            state.l1.len(),
            "hierarchy snapshot restored into a different core count"
        );
        for (c, s) in self.l1.iter_mut().zip(&state.l1) {
            c.restore(s);
        }
        for (c, s) in self.l2.iter_mut().zip(&state.l2) {
            c.restore(s);
        }
        self.l3.restore(&state.l3);
        self.pm_writebacks = state.pm_writebacks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_types::PhysAddr;

    fn line(n: u64) -> LineAddr {
        LineAddr::containing(PhysAddr::new(n * 64))
    }

    /// A miniature hierarchy so evictions are easy to force:
    /// L1 = 2 sets x 2 ways, L2 = 2 x 2, L3 = 4 x 2.
    fn tiny() -> CacheHierarchy {
        CacheHierarchy::new(HierarchyConfig {
            cores: 2,
            l1: CacheConfig::new(4 * 64, 2),
            l1_latency: Cycles::new(4),
            l2: CacheConfig::new(4 * 64, 2),
            l2_latency: Cycles::new(12),
            l3: CacheConfig::new(8 * 64, 2),
            l3_latency: Cycles::new(28),
        })
    }

    #[test]
    fn table_ii_defaults() {
        let cfg = HierarchyConfig::table_ii(8);
        assert_eq!(cfg.l1.sets(), 64);
        assert_eq!(cfg.l2.sets(), 512);
        assert_eq!(cfg.l3.sets(), 8192);
        assert_eq!(cfg.flush_chain_latency(), Cycles::new(44));
    }

    #[test]
    fn cold_miss_fills_from_memory_then_hits_in_l1() {
        let mut h = tiny();
        let a = h.access(CoreId::new(0), line(0), false);
        assert!(a.filled_from_memory);
        assert_eq!(a.hit_level, 4);
        assert_eq!(a.latency, Cycles::new(4 + 12 + 28));
        let b = h.access(CoreId::new(0), line(0), false);
        assert_eq!(b.hit_level, 1);
        assert_eq!(b.latency, Cycles::new(4));
    }

    #[test]
    fn l1_victim_lands_in_l2() {
        let mut h = tiny();
        let core = CoreId::new(0);
        // Fill L1 set 0 (even line indices) and overflow it.
        h.access(core, line(0), true);
        h.access(core, line(2), false);
        h.access(core, line(4), false); // evicts dirty line(0) into L2
        let again = h.access(core, line(0), false);
        assert_eq!(again.hit_level, 2, "dirty victim was written back to L2");
    }

    #[test]
    fn dirty_data_cascades_to_pm_writeback() {
        let mut h = tiny();
        let core = CoreId::new(0);
        // Touch enough even-index lines to overflow L1, L2 and L3 set 0.
        let mut wrote_back = Vec::new();
        for i in 0..16 {
            let acc = h.access(core, line(i * 2), true);
            wrote_back.extend(acc.pm_writebacks);
        }
        assert!(
            !wrote_back.is_empty(),
            "overflowing every level must push dirty lines to PM"
        );
        assert_eq!(h.stats().pm_writebacks, wrote_back.len() as u64);
    }

    #[test]
    fn clean_lines_never_write_back_to_pm() {
        let mut h = tiny();
        let core = CoreId::new(0);
        for i in 0..32 {
            let acc = h.access(core, line(i * 2), false);
            assert!(acc.pm_writebacks.is_empty());
        }
    }

    #[test]
    fn flush_line_reports_dirtiness_once() {
        let mut h = tiny();
        let core = CoreId::new(0);
        h.access(core, line(0), true);
        assert!(h.line_dirty(core, line(0)));
        assert!(h.flush_line(core, line(0)));
        assert!(!h.line_dirty(core, line(0)));
        assert!(!h.flush_line(core, line(0)), "second flush is a no-op");
        // Line is still resident after a clwb-style flush.
        assert_eq!(h.access(core, line(0), false).hit_level, 1);
    }

    #[test]
    fn core_l1_dirty_lists_only_that_core() {
        let mut h = tiny();
        h.access(CoreId::new(0), line(0), true);
        h.access(CoreId::new(1), line(2), true);
        assert_eq!(h.core_l1_dirty(CoreId::new(0)), vec![line(0)]);
        assert_eq!(h.core_l1_dirty(CoreId::new(1)), vec![line(2)]);
    }

    #[test]
    fn force_writeback_sweeps_everything_once() {
        let mut h = tiny();
        h.access(CoreId::new(0), line(0), true);
        h.access(CoreId::new(1), line(2), true);
        let swept = h.force_writeback_all();
        assert_eq!(swept, vec![line(0), line(2)]);
        assert!(h.force_writeback_all().is_empty());
    }

    #[test]
    fn private_caches_are_independent() {
        let mut h = tiny();
        h.access(CoreId::new(0), line(0), false);
        let other = h.access(CoreId::new(1), line(0), false);
        // Core 1 misses its private L1/L2 but hits the shared L3.
        assert_eq!(other.hit_level, 3);
    }

    #[test]
    fn invalidate_all_drops_volatile_state() {
        let mut h = tiny();
        h.access(CoreId::new(0), line(0), true);
        h.invalidate_all();
        assert!(h.all_dirty_lines().is_empty());
        assert_eq!(h.access(CoreId::new(0), line(0), false).hit_level, 4);
    }

    #[test]
    fn all_dirty_lines_deduplicates() {
        let mut h = tiny();
        let core = CoreId::new(0);
        h.access(core, line(0), true);
        // Force line(0) into L2 dirty while also dirty in... actually it
        // moves; just assert the list contains it exactly once.
        assert_eq!(h.all_dirty_lines(), vec![line(0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_core_panics() {
        let mut h = tiny();
        h.access(CoreId::new(9), line(0), false);
    }
}
