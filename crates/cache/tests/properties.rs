//! Property tests: cache structure invariants under random access
//! streams.

#![cfg(feature = "proptest")]

use proptest::prelude::*;
use silo_cache::{CacheConfig, CacheHierarchy, HierarchyConfig, SetAssocCache};
use silo_types::{CoreId, Cycles, LineAddr, PhysAddr};

fn line(n: u64) -> LineAddr {
    LineAddr::containing(PhysAddr::new(n * 64))
}

proptest! {
    /// Occupancy never exceeds capacity, and an accessed line is resident
    /// immediately afterwards.
    #[test]
    fn occupancy_bounded_and_access_allocates(
        accesses in prop::collection::vec((0u64..256, any::<bool>()), 1..200),
    ) {
        let mut c = SetAssocCache::new(CacheConfig::new(16 * 64, 4));
        for (n, w) in &accesses {
            c.access(line(*n), *w);
            prop_assert!(c.probe(line(*n)));
            prop_assert!(c.occupancy() <= 16);
        }
        let (h, m, _) = c.counters();
        prop_assert_eq!(h + m, accesses.len() as u64);
    }

    /// Dirty lines are exactly those written and not yet cleaned/evicted;
    /// a full sweep leaves nothing dirty.
    #[test]
    fn dirty_tracking_is_sound(
        accesses in prop::collection::vec((0u64..64, any::<bool>()), 1..150),
    ) {
        let mut c = SetAssocCache::new(CacheConfig::new(32 * 64, 4));
        let mut written = std::collections::HashSet::new();
        for (n, w) in &accesses {
            let out = c.access(line(*n), *w);
            if let Some(ev) = out.evicted {
                written.remove(&ev.line);
            }
            if *w {
                written.insert(line(*n));
            }
        }
        for l in c.dirty_lines() {
            prop_assert!(written.contains(&l), "{l:?} dirty but never written");
        }
        c.clean_all();
        prop_assert!(c.dirty_lines().is_empty());
    }

    /// Hierarchy: every dirty line lost at invalidate_all was previously
    /// written; a force-writeback returns each dirty line exactly once.
    #[test]
    fn hierarchy_force_writeback_is_exact(
        accesses in prop::collection::vec((0u64..128, any::<bool>(), 0usize..2), 1..200),
    ) {
        let mut h = CacheHierarchy::new(HierarchyConfig {
            cores: 2,
            l1: CacheConfig::new(4 * 64, 2),
            l1_latency: Cycles::new(4),
            l2: CacheConfig::new(8 * 64, 2),
            l2_latency: Cycles::new(12),
            l3: CacheConfig::new(16 * 64, 4),
            l3_latency: Cycles::new(28),
        });
        let mut written = std::collections::HashSet::new();
        let mut evicted_to_pm = Vec::new();
        for (n, w, core) in &accesses {
            let acc = h.access(CoreId::new(*core), line(*n), *w);
            evicted_to_pm.extend(acc.pm_writebacks);
            if *w {
                written.insert(line(*n));
            }
        }
        let mut swept = h.force_writeback_all();
        swept.sort();
        let mut unique = swept.clone();
        unique.dedup();
        prop_assert_eq!(&swept, &unique, "no line swept twice");
        for l in &swept {
            prop_assert!(written.contains(l));
        }
        for l in &evicted_to_pm {
            prop_assert!(written.contains(l), "{l:?} evicted dirty but never written");
        }
        prop_assert!(h.all_dirty_lines().is_empty());
    }
}
