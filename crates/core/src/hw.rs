//! The hardware-overhead model of paper Table I and the battery sizing of
//! Table IV.

/// Energy to move one byte from an on-chip buffer to PM, in nanojoules
/// (paper §VI-E, from the model of \[5\], \[41\]).
pub const FLUSH_ENERGY_NJ_PER_BYTE: f64 = 11.228;

/// Energy density of supercapacitors, Wh / cm³ (paper §VI-E: 10⁻⁴).
pub const CAP_ENERGY_DENSITY_WH_PER_CM3: f64 = 1e-4;

/// Energy density of lithium thin-film batteries, Wh / cm³ (10⁻²).
pub const LI_ENERGY_DENSITY_WH_PER_CM3: f64 = 1e-2;

/// The per-core and per-system hardware cost of Silo (paper Table I).
///
/// # Examples
///
/// ```
/// use silo_core::HwOverhead;
///
/// let hw = HwOverhead::paper(8);
/// assert_eq!(hw.log_buffer_bytes_per_core, 680); // 20 × (26 + 8)
/// assert_eq!(hw.comparators_per_core, 20);
/// assert_eq!(hw.total_flush_bytes(), 5440);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HwOverhead {
    /// Core count the totals are computed for.
    pub cores: usize,
    /// Log-buffer entries per core.
    pub entries_per_core: usize,
    /// SRAM bytes per core: entries × (26 B undo+redo payload + 8 B entry
    /// physical address), §VI-D.
    pub log_buffer_bytes_per_core: usize,
    /// One 64-bit comparator per entry.
    pub comparators_per_core: usize,
    /// Head + tail registers (flip-flops) per core, in bytes.
    pub head_tail_bytes_per_core: usize,
}

impl HwOverhead {
    /// The paper's configuration: 20-entry buffers.
    pub fn paper(cores: usize) -> Self {
        HwOverhead::with_entries(cores, 20)
    }

    /// A configuration with `entries` log-buffer entries per core.
    pub fn with_entries(cores: usize, entries: usize) -> Self {
        HwOverhead {
            cores,
            entries_per_core: entries,
            log_buffer_bytes_per_core: entries * (26 + 8),
            comparators_per_core: entries,
            head_tail_bytes_per_core: 16,
        }
    }

    /// Bytes the crash battery must flush: all cores' log buffers
    /// (§VI-E: 5,440 B for 8 cores).
    pub fn total_flush_bytes(&self) -> usize {
        self.cores * self.log_buffer_bytes_per_core
    }

    /// Battery energy for the crash flush, in microjoules.
    pub fn flush_energy_uj(&self) -> f64 {
        self.total_flush_bytes() as f64 * FLUSH_ENERGY_NJ_PER_BYTE / 1000.0
    }

    /// Required battery volume in mm³ for the given energy density in
    /// Wh / cm³.
    pub fn battery_volume_mm3(&self, density_wh_per_cm3: f64) -> f64 {
        // energy (µJ) → Wh: 1 Wh = 3600 J = 3.6e9 µJ. Volume in cm³, then
        // mm³ (× 1000).
        let wh = self.flush_energy_uj() / 3.6e9;
        wh / density_wh_per_cm3 * 1000.0
    }

    /// Battery footprint area in mm² assuming a cubic cell (the paper's
    /// "mm² in cubic shapes").
    pub fn battery_area_mm2(&self, density_wh_per_cm3: f64) -> f64 {
        self.battery_volume_mm3(density_wh_per_cm3).powf(2.0 / 3.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_numbers() {
        let hw = HwOverhead::paper(8);
        assert_eq!(hw.log_buffer_bytes_per_core, 680);
        assert_eq!(hw.comparators_per_core, 20);
        assert_eq!(hw.head_tail_bytes_per_core, 16);
        assert_eq!(hw.total_flush_bytes(), 5440);
    }

    #[test]
    fn table_iv_flush_energy_matches_paper() {
        // Paper: "we require 62 µJ to flush a 5,440B log buffer".
        let hw = HwOverhead::paper(8);
        let e = hw.flush_energy_uj();
        assert!((e - 61.08).abs() < 1.0, "energy = {e} µJ");
    }

    #[test]
    fn battery_volumes_are_in_paper_ballpark() {
        // Paper Table IV: Cap 0.17 mm³ / Li 0.0017 mm³ for Silo.
        let hw = HwOverhead::paper(8);
        let cap = hw.battery_volume_mm3(CAP_ENERGY_DENSITY_WH_PER_CM3);
        let li = hw.battery_volume_mm3(LI_ENERGY_DENSITY_WH_PER_CM3);
        assert!((cap - 0.17).abs() < 0.03, "cap volume = {cap}");
        assert!((li - 0.0017).abs() < 0.0003, "li volume = {li}");
        assert!((cap / li - 100.0).abs() < 1e-6);
    }

    #[test]
    fn areas_scale_as_two_thirds_power() {
        let hw = HwOverhead::paper(8);
        let v = hw.battery_volume_mm3(CAP_ENERGY_DENSITY_WH_PER_CM3);
        let a = hw.battery_area_mm2(CAP_ENERGY_DENSITY_WH_PER_CM3);
        assert!((a - v.powf(2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn smaller_buffers_cost_less() {
        let small = HwOverhead::with_entries(8, 10);
        let big = HwOverhead::with_entries(8, 40);
        assert!(small.total_flush_bytes() < big.total_flush_bytes());
        assert!(small.flush_energy_uj() < big.flush_energy_uj());
    }
}
