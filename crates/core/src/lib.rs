//! Silo: speculative hardware logging for atomic durability in persistent
//! memory (HPCA 2023).
//!
//! This crate implements the paper's primary contribution as a
//! [`LoggingScheme`](silo_sim::LoggingScheme) plug-in for the `silo-sim`
//! engine, plus the standalone hardware structures it is built from:
//!
//! * [`LogEntry`] — the undo+redo entry of Fig 6 (flush-bit, 8-bit tid,
//!   16-bit txid, 48-bit address, old + new word) with the PM wire encoding
//!   used by the log region (18 B undo/redo records, ID tuples).
//! * [`LogBuffer`] — the 20-entry battery-backed per-core buffer with
//!   parallel-comparator **merging** (§III-C), line-granular **flush-bit**
//!   matching (§III-D), and FIFO **overflow** eviction (§III-F).
//! * [`ThreadLogArea`] — a thread's private area in the distributed PM log
//!   region, with the crash-time header that tells recovery how many bytes
//!   are valid.
//! * [`SiloScheme`] — the full design: log ignorance, merging, log-as-data
//!   in-place updates after commit, batched undo overflow, selective crash
//!   flushing, and recovery (§III-G, Fig 10).
//! * [`HwOverhead`] — the Table I hardware cost model.
//!
//! The "common failure-free case" writes **zero** log bytes to PM: the only
//! PM traffic is the new data itself, flushed at word granularity through
//! the on-PM coalescing buffer. Logs reach the PM log region only on buffer
//! overflow (undo batches) and on a power failure (selective flush).
//!
//! # Examples
//!
//! ```
//! use silo_core::SiloScheme;
//! use silo_sim::{Engine, SimConfig, Transaction};
//! use silo_types::{PhysAddr, Word};
//!
//! let config = SimConfig::table_ii(1);
//! let mut silo = SiloScheme::new(&config);
//! let tx = Transaction::builder()
//!     .write(PhysAddr::new(0), Word::new(1))
//!     .write(PhysAddr::new(0), Word::new(2)) // merged on chip
//!     .build();
//! let out = Engine::new(&config, &mut silo).run(vec![vec![tx]], None);
//! assert_eq!(out.stats.txs_committed, 1);
//! assert_eq!(out.stats.scheme_stats.log_entries_merged, 1);
//! assert_eq!(out.stats.pm.log_region_writes, 0); // log-as-data: no log writes
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod entry;
mod hw;
mod recovery;
mod region;
mod scheme;

pub use buffer::{InsertOutcome, LogBuffer};
pub use entry::{LogEntry, Record, RecordKind, RECORD_BYTES, UNDO_ENTRY_BYTES};
pub use hw::{
    HwOverhead, CAP_ENERGY_DENSITY_WH_PER_CM3, FLUSH_ENERGY_NJ_PER_BYTE,
    LI_ENERGY_DENSITY_WH_PER_CM3,
};
pub use recovery::recover as recover_log_region;
pub use region::{AreaHeader, ThreadLogArea, AREA_HEADER_BYTES};
pub use scheme::{SiloOptions, SiloScheme};
