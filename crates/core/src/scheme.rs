//! The full Silo design as a pluggable logging scheme.

use std::collections::VecDeque;

use silo_sim::{
    CycleCategory, EvictAction, LoggingScheme, Machine, ProbeEventKind, RecoveryReport,
    SchemeStats, SimConfig,
};
use silo_types::{CoreId, Cycles, LineAddr, PhysAddr, TxTag, Word};

use crate::{recovery, LogBuffer, LogEntry, Record, ThreadLogArea, RECORD_BYTES};

/// Feature switches for Silo's mechanisms, used by the ablation benches.
/// Defaults are the full paper design.
///
/// # Examples
///
/// ```
/// use silo_core::SiloOptions;
///
/// let full = SiloOptions::default();
/// assert!(full.log_ignorance && full.log_merging && full.onpm_coalescing);
/// let no_merge = SiloOptions { log_merging: false, ..SiloOptions::default() };
/// assert!(!no_merge.log_merging);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiloOptions {
    /// Drop logs whose store does not change the word (§III-C).
    pub log_ignorance: bool,
    /// Merge same-word logs within a transaction (§III-C).
    pub log_merging: bool,
    /// Route PM writes through the on-PM coalescing buffer (§III-E).
    pub onpm_coalescing: bool,
    /// Track cacheline evictions with flush-bits (§III-D).
    pub flush_bit: bool,
    /// Cycles after commit before the log controller pushes the new data
    /// into the WPQ. The data is battery-safe meanwhile; this window is
    /// where §III-G's "committed but not yet flushed" redo case lives.
    pub ipu_drain_delay: u64,
    /// Overrides the overflow batch size (`None` = the §III-F formula,
    /// `N = floor(S / 18)`); used by the batching ablation.
    pub overflow_batch_override: Option<usize>,
    /// Capacity (in entries) of the log controller's pending
    /// in-place-update queue. Committed entries wait here for the WPQ;
    /// when the backlog exceeds this bound, the next commit stalls until
    /// the controller drains below it — the on-chip persistent domain is
    /// small (Table I), so the backlog cannot grow without bound.
    pub ipu_queue_entries: usize,
}

impl Default for SiloOptions {
    fn default() -> Self {
        SiloOptions {
            log_ignorance: true,
            log_merging: true,
            onpm_coalescing: true,
            flush_bit: true,
            ipu_drain_delay: 64,
            overflow_batch_override: None,
            ipu_queue_entries: 64,
        }
    }
}

/// A committed transaction's entries waiting for the background
/// in-place-update flush. Lives in the battery-backed domain.
#[derive(Clone, Debug)]
struct PendingIpu {
    tag: TxTag,
    ready: Cycles,
    // A queue, not a Vec: drains pop from the front one entry at a time
    // and can be interrupted mid-transaction, so front removal must be
    // O(1) rather than `remove(0)`'s O(n) shift.
    entries: VecDeque<LogEntry>,
}

/// How [`SiloScheme::flush_pending`] paces a drain — the two callers have
/// different timing semantics that must not be conflated.
#[derive(Clone, Copy, Debug)]
enum DrainPace {
    /// Background drain at a fixed clock: writes are admitted at `now`
    /// (WPQ admission latency is absorbed by the controller, not the
    /// core), and unless `force` is set the drain defers to WPQ
    /// back-pressure.
    Background {
        /// End-of-run drain: wait out back-pressure instead of deferring.
        force: bool,
    },
    /// Commit-stall drain (`on_tx_end` force-drain): the committing core
    /// is waiting, so each admission advances the clock, and the WPQ is
    /// not consulted — the stall itself is the back-pressure.
    CommitStall,
}

/// Per-core hardware state: the log buffer, the log-area cursor registers,
/// and the in-flight transaction marker.
#[derive(Clone, Debug)]
struct CoreLog {
    buffer: LogBuffer,
    area: ThreadLogArea,
    current_tag: Option<TxTag>,
    pending_ipu: VecDeque<PendingIpu>,
}

/// Silo: speculative hardware logging with "log as data" (paper §III).
///
/// In the failure-free fast path a transaction costs:
/// * per store — nothing on the critical path (log generation runs in
///   parallel with the next instruction; merging happens in the
///   background);
/// * at commit — an on-chip ACK round trip plus one log-buffer access,
///   after which the new data drains to the PM data region through the
///   write-coalescing on-PM buffer **without any log-region write**.
///
/// Rare cases: log-buffer overflow evicts batched undo records (§III-F); a
/// power failure triggers the selective flush (§III-G); `recover` replays /
/// revokes per Fig 10g.
///
/// See the crate-level example for usage.
#[derive(Clone, Debug)]
pub struct SiloScheme {
    options: SiloOptions,
    overflow_batch: usize,
    buffer_latency: Cycles,
    ack_cycles: u64,
    cores: Vec<CoreLog>,
    stats: SchemeStats,
}

impl SiloScheme {
    /// Builds the full Silo design for `config`'s machine.
    pub fn new(config: &SimConfig) -> Self {
        SiloScheme::with_options(config, SiloOptions::default())
    }

    /// Builds Silo with specific mechanisms toggled (ablations).
    pub fn with_options(config: &SimConfig, options: SiloOptions) -> Self {
        let cores = (0..config.cores)
            .map(|i| {
                let tid = CoreId::new(i).thread();
                CoreLog {
                    buffer: LogBuffer::new(config.log_buffer_entries),
                    area: ThreadLogArea::new(
                        config.thread_log_base(tid),
                        config.thread_log_end(tid),
                    ),
                    current_tag: None,
                    pending_ipu: VecDeque::new(),
                }
            })
            .collect();
        SiloScheme {
            overflow_batch: options
                .overflow_batch_override
                .unwrap_or_else(|| config.overflow_batch_entries())
                .max(1),
            options,
            buffer_latency: config.log_buffer_latency,
            ack_cycles: config.commit_ack_cycles,
            cores,
            stats: SchemeStats::default(),
        }
    }

    /// The active option set.
    pub fn options(&self) -> SiloOptions {
        self.options
    }

    /// Total battery-backed bytes currently holding unflushed new data
    /// (log buffers + pending in-place updates) — what the crash battery
    /// must be able to drain.
    pub fn battery_resident_entries(&self) -> usize {
        self.cores
            .iter()
            .map(|c| c.buffer.len() + c.pending_ipu.iter().map(|p| p.entries.len()).sum::<usize>())
            .sum()
    }

    /// All of a transaction's log traffic goes through its core's home MC
    /// (§III-D: "the log generator sends the logs from the same
    /// transaction to the same MC. Hence, the logs and in-place updates
    /// end up at the same MC.").
    fn pm_write(
        &self,
        m: &mut Machine,
        core: usize,
        now: Cycles,
        addr: PhysAddr,
        bytes: &[u8],
    ) -> Cycles {
        let mc = m.home_mc(CoreId::new(core));
        let adm = if self.options.onpm_coalescing {
            m.pm_write_coalesced_via(mc, now, addr, bytes)
        } else {
            m.pm_write_through_via(mc, now, addr, bytes)
        };
        adm.admit
    }

    /// Entries queued behind the in-place-update drain on `core`.
    fn backlog_entries(&self, ci: usize) -> usize {
        self.cores[ci]
            .pending_ipu
            .iter()
            .map(|p| p.entries.len())
            .sum()
    }

    /// Whether `core`'s home WPQ can take more background traffic at
    /// `now`. The log controller paces itself against the queue — it
    /// never oversubscribes the persist domain (its data is battery-safe
    /// while it waits).
    fn wpq_has_room(m: &mut Machine, core: usize, now: Cycles) -> bool {
        let mc = m.home_mc(CoreId::new(core));
        // The pacing check models the MC retiring serviced writes as of
        // the pacer's clock: an explicit state advance, not a side effect
        // of the (read-only) occupancy query.
        m.mcs[mc].retire(now);
        m.mcs[mc].occupancy(now) < m.config.memctrl.wpq_entries
    }

    /// The single pending-IPU drain loop, shared by the background hooks
    /// and the commit-stall path. Pops entries from the front of
    /// `pending`, skipping flush-bit-1 words (an eviction already carried
    /// them) and writing the rest in place. Checks power (and, per
    /// `pace`, WPQ back-pressure) *before* each pop; on a block, the
    /// unfinished remainder goes back to the front of the core's pending
    /// queue — battery-backed, so `on_crash` or a later hook finishes it.
    ///
    /// Returns the (possibly advanced) clock and whether the pending item
    /// drained completely.
    fn flush_pending(
        &mut self,
        m: &mut Machine,
        ci: usize,
        mut pending: PendingIpu,
        mut t: Cycles,
        pace: DrainPace,
    ) -> (Cycles, bool) {
        let mut written: u64 = 0;
        while let Some(&e) = pending.entries.front() {
            let blocked = m.pm.power_tripped()
                || match pace {
                    DrainPace::Background { force } => !force && !Self::wpq_has_room(m, ci, t),
                    DrainPace::CommitStall => false,
                };
            if blocked {
                self.cores[ci].pending_ipu.push_front(pending);
                return (t, false);
            }
            if e.flush_bit() {
                pending.entries.pop_front();
                continue;
            }
            let dropped = m.pm.dropped();
            let admit = self.pm_write(m, ci, t, e.addr(), &e.new_data().to_le_bytes());
            if m.pm.dropped() != dropped {
                // Power failed at this very admission: the device never
                // took the bytes. The controller keeps its copy until the
                // WPQ accepts a write, so the entry stays in the
                // battery-backed queue and `on_crash` flushes its redo
                // record instead — popping first would lose a committed
                // word with no trace for recovery to replay.
                self.cores[ci].pending_ipu.push_front(pending);
                return (t, false);
            }
            pending.entries.pop_front();
            if matches!(pace, DrainPace::CommitStall) {
                // The committing core waits out the in-place-update drain:
                // attribute that slice of the commit stall to `Drain`.
                m.probe
                    .claim(ci, CycleCategory::Drain, admit.saturating_sub(t).as_u64());
                t = t.max(admit);
            }
            self.stats.inplace_update_words += 1;
            written += 1;
        }
        if written > 0 {
            m.probe.emit(
                ProbeEventKind::BufferDrain,
                Some(ci as u32),
                t.as_u64(),
                written,
            );
        }
        (t, true)
    }

    /// Pushes ready post-commit new data into the WPQ (background work).
    /// Stops as soon as the WPQ fills; the remainder stays in the
    /// battery-backed pending queue and is retried at the next hook. When
    /// `force` is set (end of run), admission waits instead of deferring.
    fn drain_ready_ipu(&mut self, m: &mut Machine, now: Cycles, force: bool) {
        for ci in 0..self.cores.len() {
            loop {
                if m.pm.power_tripped() {
                    // Power failed: further in-place writes would drop
                    // silently. The pending queue is battery-backed, so
                    // whatever stays in it reaches PM via `on_crash`.
                    return;
                }
                let ready = matches!(
                    self.cores[ci].pending_ipu.front(),
                    Some(p) if force || p.ready <= now
                );
                if !ready {
                    break;
                }
                if !force && !Self::wpq_has_room(m, ci, now) {
                    return; // back-pressure: retry on a later hook
                }
                let pending = self.cores[ci]
                    .pending_ipu
                    .pop_front()
                    .expect("front checked above");
                let (_, drained) =
                    self.flush_pending(m, ci, pending, now, DrainPace::Background { force });
                if !drained {
                    return;
                }
            }
        }
    }

    /// §III-F: evicts a batch of undo logs to the thread's log area and
    /// writes the still-unflushed new data to the data region. Returns the
    /// time after any WPQ back-pressure — overflow flushing runs in
    /// parallel with execution (§III-F), but a full persist queue throttles
    /// the log generator and thus the store stream.
    fn handle_overflow(&mut self, m: &mut Machine, core: usize, now: Cycles) -> Cycles {
        self.stats.overflow_events += 1;
        let batch = self.cores[core]
            .buffer
            .take_overflow_batch(self.overflow_batch);
        debug_assert!(!batch.is_empty());
        m.probe.emit(
            ProbeEventKind::LogOverflow,
            Some(core as u32),
            now.as_u64(),
            batch.len() as u64,
        );
        // Batched, address-adjacent undo records: one buffer-line-sized
        // write to the log region.
        let addr = self.cores[core].area.reserve(batch.len());
        let mut bytes = Vec::with_capacity(batch.len() * RECORD_BYTES);
        let mut data_words: Vec<(PhysAddr, Word)> = Vec::new();
        for mut e in batch {
            if !e.flush_bit() {
                // Case 2: set the bit and persist the new data now to keep
                // durability if the transaction later commits.
                e.set_flush_bit();
                data_words.push((e.addr(), e.new_data()));
            }
            bytes.extend_from_slice(&e.undo_record().encode());
            self.stats.log_entries_written_to_pm += 1;
        }
        self.stats.log_bytes_written_to_pm += bytes.len() as u64;
        // Flushing overflowed logs and adding new logs proceed in parallel
        // (§III-F); only WPQ admission back-pressure reaches the core.
        let dropped = m.pm.dropped();
        let mut t = self.pm_write(m, core, now, addr, &bytes);
        if m.pm.dropped() != dropped {
            // Power failed at the batch write: the tail must not cover
            // bytes the device never received — a crash header bounding
            // them would expose stale records to the recovery scan.
            self.cores[core].area.rewind(bytes.len() / RECORD_BYTES);
        }
        for (waddr, word) in data_words {
            t = t.max(self.pm_write(m, core, t, waddr, &word.to_le_bytes()));
            self.stats.inplace_update_words += 1;
        }
        t
    }
}

impl LoggingScheme for SiloScheme {
    fn name(&self) -> &'static str {
        "Silo"
    }

    fn coalesces_pm_writes(&self) -> bool {
        self.options.onpm_coalescing
    }

    fn on_tx_begin(&mut self, m: &mut Machine, _core: CoreId, tag: TxTag, now: Cycles) -> Cycles {
        self.drain_ready_ipu(m, now, false);
        let core = &mut self.cores[tag.tid().as_u8() as usize];
        debug_assert!(core.buffer.is_empty(), "buffer deallocated at commit");
        core.current_tag = Some(tag);
        now
    }

    fn on_store(
        &mut self,
        m: &mut Machine,
        core: CoreId,
        addr: PhysAddr,
        old: Word,
        new: Word,
        now: Cycles,
    ) -> Cycles {
        self.drain_ready_ipu(m, now, false);
        let ci = core.as_usize();
        let Some(tag) = self.cores[ci].current_tag else {
            return now; // non-transactional store: no logging
        };
        self.stats.log_entries_generated += 1;
        if self.options.log_ignorance && old == new {
            self.stats.log_entries_ignored += 1;
            m.probe.emit(
                ProbeEventKind::LogIgnore,
                Some(ci as u32),
                now.as_u64(),
                addr.as_u64(),
            );
            return now;
        }
        let entry = LogEntry::new(tag, addr.word_aligned(), old, new);
        let mut t = now;
        if self.options.log_merging {
            if self.cores[ci].buffer.needs_overflow_for(&entry) {
                t = self.handle_overflow(m, ci, t);
            }
            if self.cores[ci].buffer.insert(entry) == crate::InsertOutcome::Merged {
                self.stats.log_entries_merged += 1;
                m.probe.emit(
                    ProbeEventKind::LogMerge,
                    Some(ci as u32),
                    t.as_u64(),
                    addr.as_u64(),
                );
            }
        } else {
            // Ablation: no merge search; every store consumes a slot.
            if self.cores[ci].buffer.is_full() {
                t = self.handle_overflow(m, ci, t);
            }
            self.cores[ci].buffer.append(entry);
        }
        // Log generation overlaps the next instruction (§III-B): no stall
        // beyond overflow back-pressure.
        t
    }

    fn on_evict(
        &mut self,
        _m: &mut Machine,
        _core: CoreId,
        line: LineAddr,
        now: Cycles,
    ) -> (EvictAction, Cycles) {
        if self.options.flush_bit {
            // The comparators in every core's log buffer check the evicted
            // line address in parallel (§III-D).
            for core in &mut self.cores {
                self.stats.flush_bits_set += core.buffer.mark_line_evicted(line) as u64;
            }
        }
        (EvictAction::WriteBack, now)
    }

    fn on_tx_end(&mut self, m: &mut Machine, core: CoreId, tag: TxTag, now: Cycles) -> Cycles {
        self.drain_ready_ipu(m, now, false);
        let ci = core.as_usize();
        if m.pm.power_tripped() {
            // Power failed while the controller drained earlier commits:
            // this transaction's commit never reached the controller. Its
            // entries stay in the (battery-backed) log buffer, whose undo
            // halves `on_crash` flushes for recovery to revoke.
            return now;
        }
        self.stats.transactions += 1;
        self.stats.log_entries_remaining += self.cores[ci].buffer.len() as u64;
        // Commit: the log generator notifies the log controller and waits
        // only for the on-chip ACK; one log-buffer access sits on that
        // round trip (Fig 15's sensitivity lever).
        let mut commit_time = now + Cycles::new(self.ack_cycles) + self.buffer_latency;
        let entries = self.cores[ci].buffer.drain_all();
        if !entries.is_empty() {
            self.cores[ci].pending_ipu.push_back(PendingIpu {
                tag,
                ready: commit_time + Cycles::new(self.options.ipu_drain_delay),
                entries: entries.into(),
            });
        }
        // The pending queue is a small on-chip structure: if the WPQ has
        // starved it past capacity, this commit stalls while the
        // controller force-drains the oldest entries (rare-case
        // back-pressure; the common case never enters this loop).
        while !m.pm.power_tripped() && self.backlog_entries(ci) > self.options.ipu_queue_entries {
            let pending = self.cores[ci]
                .pending_ipu
                .pop_front()
                .expect("backlog positive implies a pending item");
            let (t, drained) =
                self.flush_pending(m, ci, pending, commit_time, DrainPace::CommitStall);
            commit_time = t;
            if !drained {
                // Power failed mid-drain: the battery-backed queue keeps
                // the remainder so `on_crash` flushes its redo + ID tuple.
                break;
            }
        }
        if m.pm.power_tripped() {
            // Power failed after the commit reached the controller: the
            // pending queue (battery-backed) carries the commit to PM via
            // `on_crash`; the dead core never ran the register reset.
            return commit_time;
        }
        // Overflowed logs are deleted after commit (§III-F): register reset.
        self.cores[ci].area.truncate();
        self.cores[ci].current_tag = None;
        self.drain_ready_ipu(m, commit_time, false);
        commit_time
    }

    fn on_tick(&mut self, m: &mut Machine, now: Cycles) {
        self.drain_ready_ipu(m, now, false);
    }

    fn on_run_end(&mut self, m: &mut Machine, now: Cycles) {
        self.drain_ready_ipu(m, now, true);
    }

    fn on_crash(&mut self, m: &mut Machine) {
        // Battery-powered selective flush (§III-G). Direct device writes:
        // the battery is sized for this (Table IV), no MC timing involved.
        for core in &mut self.cores {
            // Committed transactions whose new data had not drained yet:
            // flush redo logs (flush-bit 0) plus the ID tuple.
            while let Some(pending) = core.pending_ipu.pop_front() {
                let redo: Vec<Record> = pending
                    .entries
                    .iter()
                    .filter(|e| !e.flush_bit())
                    .map(|e| e.redo_record())
                    .collect();
                let total = redo.len() + 1;
                let addr = core.area.reserve(total);
                let mut bytes = Vec::with_capacity(total * RECORD_BYTES);
                for r in &redo {
                    bytes.extend_from_slice(&r.encode());
                }
                bytes.extend_from_slice(&Record::id_tuple(pending.tag).encode());
                m.pm.write(addr, &bytes);
                self.stats.log_entries_written_to_pm += total as u64;
                self.stats.log_bytes_written_to_pm += bytes.len() as u64;
            }
            // The in-flight transaction, if any: flush all undo logs to
            // revoke its partial updates.
            if core.current_tag.is_some() && !core.buffer.is_empty() {
                let entries = core.buffer.drain_all();
                let addr = core.area.reserve(entries.len());
                let mut bytes = Vec::with_capacity(entries.len() * RECORD_BYTES);
                for e in &entries {
                    bytes.extend_from_slice(&e.undo_record().encode());
                }
                m.pm.write(addr, &bytes);
                self.stats.log_entries_written_to_pm += entries.len() as u64;
                self.stats.log_bytes_written_to_pm += bytes.len() as u64;
            }
            core.area.write_crash_header(&mut m.pm);
            core.current_tag = None;
        }
    }

    fn recover(&mut self, m: &mut Machine) -> RecoveryReport {
        let bases: Vec<PhysAddr> = self.cores.iter().map(|c| c.area.base()).collect();
        let report = recovery::recover(&mut m.pm, &bases);
        for core in &mut self.cores {
            core.area.truncate();
            core.pending_ipu.clear();
            core.current_tag = None;
            debug_assert!(core.buffer.is_empty());
        }
        report
    }

    fn stats(&self) -> SchemeStats {
        self.stats
    }

    silo_sim::impl_scheme_snapshot!();
}

const _: () = assert!(
    silo_types::WORD_BYTES == 8,
    "the log data field is one 64-bit word"
);

#[cfg(test)]
mod tests {
    use super::*;
    use silo_sim::{Engine, Transaction};

    fn tx(writes: &[(u64, u64)]) -> Transaction {
        let mut b = Transaction::builder();
        for &(a, v) in writes {
            b = b.write(PhysAddr::new(a), Word::new(v));
        }
        b.build()
    }

    #[test]
    fn failure_free_run_writes_zero_log_bytes() {
        let cfg = SimConfig::table_ii(1);
        let mut silo = SiloScheme::new(&cfg);
        let txs = vec![tx(&[(0, 1), (8, 2)]), tx(&[(64, 3)])];
        let out = Engine::new(&cfg, &mut silo).run(vec![txs], None);
        assert_eq!(out.stats.txs_committed, 2);
        assert_eq!(out.stats.pm.log_region_writes, 0, "log-as-data fast path");
        assert_eq!(out.stats.scheme_stats.log_bytes_written_to_pm, 0);
        assert_eq!(out.stats.scheme_stats.inplace_update_words, 3);
    }

    #[test]
    fn committed_data_reaches_pm_after_run() {
        let cfg = SimConfig::table_ii(1);
        let mut silo = SiloScheme::new(&cfg);
        let out = Engine::new(&cfg, &mut silo).run(vec![vec![tx(&[(0, 7), (128, 9)])]], None);
        assert_eq!(out.stats.txs_committed, 1);
        // RunOutcome has no machine access; verify through a fresh engine's
        // oracle-free path is not possible — instead rely on the PM stats:
        // two in-place-update words accepted.
        assert_eq!(out.stats.scheme_stats.inplace_update_words, 2);
        assert!(out.stats.pm.data_region_writes >= 2);
    }

    #[test]
    fn ignorance_skips_unchanged_stores() {
        let cfg = SimConfig::table_ii(1);
        let mut silo = SiloScheme::new(&cfg);
        // Second tx rewrites the same value: old == new once data landed.
        let txs = vec![tx(&[(0, 5)]), tx(&[(0, 5)])];
        let out = Engine::new(&cfg, &mut silo).run(vec![txs], None);
        let s = out.stats.scheme_stats;
        assert_eq!(s.log_entries_generated, 2);
        assert_eq!(s.log_entries_ignored, 1);
        assert_eq!(s.inplace_update_words, 1);
    }

    #[test]
    fn merging_collapses_same_word_stores() {
        let cfg = SimConfig::table_ii(1);
        let mut silo = SiloScheme::new(&cfg);
        let txs = vec![tx(&[(0, 1), (0, 2), (0, 3)])];
        let out = Engine::new(&cfg, &mut silo).run(vec![txs], None);
        let s = out.stats.scheme_stats;
        assert_eq!(s.log_entries_merged, 2);
        assert_eq!(s.log_entries_remaining, 1);
        assert_eq!(s.inplace_update_words, 1);
    }

    #[test]
    fn overflow_writes_batched_undo_records() {
        let cfg = SimConfig::table_ii(1);
        let mut silo = SiloScheme::new(&cfg);
        // 25 distinct words > 20-entry buffer: one overflow batch of 14.
        let writes: Vec<(u64, u64)> = (0..25).map(|i| (i * 8, i + 1)).collect();
        let out = Engine::new(&cfg, &mut silo).run(vec![vec![tx(&writes)]], None);
        let s = out.stats.scheme_stats;
        assert_eq!(s.overflow_events, 1);
        assert_eq!(s.log_entries_written_to_pm, 14);
        assert_eq!(s.log_bytes_written_to_pm, 14 * RECORD_BYTES as u64);
        assert!(out.stats.pm.log_region_writes > 0);
        // All 25 words still reach the data region: 14 at overflow + 11 at
        // commit.
        assert_eq!(s.inplace_update_words, 25);
        assert_eq!(out.stats.txs_committed, 1, "no abort on overflow (§III-F)");
    }

    #[test]
    fn crash_mid_transaction_revokes_partial_updates() {
        let cfg = SimConfig::table_ii(1);
        let mut silo = SiloScheme::new(&cfg);
        // Big transaction; crash while it runs.
        let writes: Vec<(u64, u64)> = (0..40).map(|i| (i * 8, 0xBEEF + i)).collect();
        let out = Engine::new(&cfg, &mut silo).run(vec![vec![tx(&writes)]], Some(Cycles::new(400)));
        let crash = out.crash.expect("crash injected");
        assert_eq!(
            crash.committed_txs, 0,
            "tx must still be in flight at the crash"
        );
        assert!(crash.consistency.is_consistent(), "{:?}", crash.consistency);
    }

    #[test]
    fn crash_after_commit_replays_redo_logs() {
        let cfg = SimConfig::table_ii(1);
        let mut silo = SiloScheme::with_options(
            &cfg,
            SiloOptions {
                // Large drain delay guarantees the crash lands in the
                // committed-but-unflushed window (§III-G case 2).
                ipu_drain_delay: 10_000_000,
                ..SiloOptions::default()
            },
        );
        let out = Engine::new(&cfg, &mut silo).run(
            vec![vec![tx(&[(0, 1), (8, 2)])]],
            Some(Cycles::new(1_000_000)),
        );
        let crash = out.crash.expect("crash injected");
        assert_eq!(crash.committed_txs, 1);
        assert_eq!(crash.recovery.committed_txs, 1);
        assert_eq!(crash.recovery.replayed_words, 2);
        assert!(crash.consistency.is_consistent(), "{:?}", crash.consistency);
    }

    #[test]
    fn crash_probe_across_many_cycles_is_always_consistent() {
        // Sweep crash points through the whole execution window.
        for crash_at in (0..30_000).step_by(1_777) {
            let cfg = SimConfig::table_ii(2);
            let mut silo = SiloScheme::new(&cfg);
            let s0: Vec<Transaction> = (0..6)
                .map(|i| tx(&[(i * 8, i + 1), (4096 + i * 8, i + 10)]))
                .collect();
            let s1: Vec<Transaction> = (0..6)
                .map(|i| tx(&[(1 << 20 | (i * 8), i + 100)]))
                .collect();
            let out = Engine::new(&cfg, &mut silo).run(vec![s0, s1], Some(Cycles::new(crash_at)));
            let crash = out.crash.expect("crash injected");
            assert!(
                crash.consistency.is_consistent(),
                "crash at {crash_at}: {:?}",
                crash.consistency.violations
            );
        }
    }

    #[test]
    fn options_accessor_reflects_construction() {
        let cfg = SimConfig::table_ii(1);
        let opts = SiloOptions {
            flush_bit: false,
            ..SiloOptions::default()
        };
        let silo = SiloScheme::with_options(&cfg, opts);
        assert_eq!(silo.options(), opts);
        assert_eq!(silo.battery_resident_entries(), 0);
        assert!(silo.coalesces_pm_writes());
        assert_eq!(silo.name(), "Silo");
    }
}

#[cfg(test)]
mod battery_tests {
    use super::*;
    use silo_sim::{Engine, Transaction};

    fn tx(writes: &[(u64, u64)]) -> Transaction {
        let mut b = Transaction::builder();
        for &(a, v) in writes {
            b = b.write(PhysAddr::new(a), Word::new(v));
        }
        b.build()
    }

    /// The §III-G crash flush must fit the Table IV battery budget: what
    /// the battery drains is bounded by the on-chip persistent state (log
    /// buffers + bounded pending queue + ID tuples + area headers).
    #[test]
    fn crash_flush_fits_battery_budget() {
        let cores = 8;
        let cfg = SimConfig::table_ii(cores);
        let streams: Vec<Vec<Transaction>> = (0..cores)
            .map(|c| {
                (0..20u64)
                    .map(|i| {
                        let base = (c as u64) << 26;
                        let writes: Vec<(u64, u64)> =
                            (0..18).map(|w| (base + (i * 32 + w) * 8, w + 1)).collect();
                        tx(&writes)
                    })
                    .collect()
            })
            .collect();
        let mut silo = SiloScheme::with_options(
            &cfg,
            SiloOptions {
                ipu_drain_delay: 10_000_000, // keep pending queues loaded
                ..SiloOptions::default()
            },
        );
        let before_crash_writes = {
            let out = Engine::new(&cfg, &mut silo).run(streams.clone(), None);
            out.stats.pm.accepted_bytes
        };
        let _ = before_crash_writes;
        let mut silo2 = SiloScheme::with_options(
            &cfg,
            SiloOptions {
                ipu_drain_delay: 10_000_000,
                ..SiloOptions::default()
            },
        );
        let out = Engine::new(&cfg, &mut silo2).run(streams, Some(Cycles::new(30_000)));
        let crash = out.crash.expect("crash injected");
        assert!(crash.consistency.is_consistent());
        // Battery budget: per core, <= (buffer entries + pending bound + 1
        // ID tuple per pending tx) records + one header. Use a generous
        // structural bound and assert the flush stayed within it.
        let per_core_records = cfg.log_buffer_entries as u64
            + 64 // ipu_queue_entries default
            + 64; // one ID tuple per pending transaction, overestimated
        let budget_bytes = cores as u64 * (per_core_records * crate::RECORD_BYTES as u64 + 8);
        assert!(
            out.stats.scheme_stats.log_bytes_written_to_pm <= budget_bytes,
            "crash flush {} B exceeds battery budget {} B",
            out.stats.scheme_stats.log_bytes_written_to_pm,
            budget_bytes
        );
    }

    /// Read-only transactions commit with zero persistent work.
    #[test]
    fn read_only_transactions_are_free() {
        let cfg = SimConfig::table_ii(1);
        let mut silo = SiloScheme::new(&cfg);
        let txs: Vec<Transaction> = (0..5)
            .map(|i| {
                Transaction::builder()
                    .read(PhysAddr::new(i * 64))
                    .compute(10)
                    .build()
            })
            .collect();
        let out = Engine::new(&cfg, &mut silo).run(vec![txs], None);
        assert_eq!(out.stats.txs_committed, 5);
        assert_eq!(out.stats.pm.accepted_writes, 0);
        assert_eq!(out.stats.scheme_stats.log_entries_generated, 0);
    }

    /// A tiny pending-queue bound forces commit-time draining but never
    /// breaks correctness.
    #[test]
    fn tiny_ipu_queue_still_correct() {
        let cfg = SimConfig::table_ii(1);
        let mut silo = SiloScheme::with_options(
            &cfg,
            SiloOptions {
                ipu_queue_entries: 1,
                ipu_drain_delay: 1_000_000,
                ..SiloOptions::default()
            },
        );
        let txs: Vec<Transaction> = (0..10)
            .map(|i| tx(&[(i * 8, i + 1), (4096 + i * 8, i + 2)]))
            .collect();
        let out = Engine::new(&cfg, &mut silo).run(vec![txs], None);
        assert_eq!(out.stats.txs_committed, 10);
        // All words eventually reached PM.
        assert_eq!(out.stats.scheme_stats.inplace_update_words, 20);
        for i in 0..10u64 {
            assert_eq!(out.pm.peek_word(PhysAddr::new(i * 8)), Word::new(i + 1));
        }
    }
}
