//! The per-core battery-backed log buffer (paper §III-B, §III-C).

use std::collections::VecDeque;

#[cfg(test)]
use silo_types::Word;
use silo_types::{LineAddr, PhysAddr, TxTag};

use crate::LogEntry;

/// What [`LogBuffer::insert`] did with a new entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Appended as a fresh entry.
    Appended,
    /// Merged into an existing same-address entry (§III-C): the buffer did
    /// not grow.
    Merged,
}

/// The 20-entry FIFO log buffer attached to each core's memory-controller
/// path, persistent via a small battery (Table I).
///
/// Every entry has an associated 64-bit hardware comparator; an incoming
/// entry's address is compared against all resident entries **in parallel**
/// (modelled as an associative scan), enabling:
///
/// * **log merging** — a same-word, same-transaction entry absorbs the new
///   one, keeping the oldest `old` and newest `new` (§III-C);
/// * **flush-bit matching** — an evicted cacheline address is compared at
///   line granularity against all entries, setting their flush-bits
///   (§III-D).
///
/// Overflow does not abort the transaction: the **oldest** entries are
/// evicted as an undo batch (§III-F); [`LogBuffer::take_overflow_batch`]
/// hands them to the log controller.
///
/// # Examples
///
/// ```
/// use silo_core::{LogBuffer, LogEntry, InsertOutcome};
/// use silo_types::{PhysAddr, ThreadId, TxId, TxTag, Word};
///
/// let tag = TxTag::new(ThreadId::new(0), TxId::new(1));
/// let mut buf = LogBuffer::new(20);
/// let e1 = LogEntry::new(tag, PhysAddr::new(0), Word::new(0), Word::new(1));
/// let e2 = LogEntry::new(tag, PhysAddr::new(0), Word::new(1), Word::new(2));
/// assert_eq!(buf.insert(e1), InsertOutcome::Appended);
/// assert_eq!(buf.insert(e2), InsertOutcome::Merged);
/// assert_eq!(buf.len(), 1);
/// assert_eq!(buf.entries().next().unwrap().new_data(), Word::new(2));
/// ```
#[derive(Clone, Debug)]
pub struct LogBuffer {
    capacity: usize,
    entries: VecDeque<LogEntry>,
    high_water: usize,
}

impl LogBuffer {
    /// Creates an empty buffer with room for `capacity` entries (paper:
    /// 20, from the §VI-D sweep).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "log buffer needs at least one entry");
        LogBuffer {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            high_water: 0,
        }
    }

    /// Inserts an entry, merging into an existing same-address entry of the
    /// same transaction if the comparators find one.
    ///
    /// The caller must make room first: inserting into a full buffer with
    /// no merge candidate panics — the log controller always drains an
    /// overflow batch before retrying (see
    /// [`LogBuffer::needs_overflow_for`]).
    pub fn insert(&mut self, entry: LogEntry) -> InsertOutcome {
        if let Some(existing) = self
            .entries
            .iter_mut()
            .find(|e| e.addr() == entry.addr() && e.tag() == entry.tag())
        {
            existing.merge(&entry);
            return InsertOutcome::Merged;
        }
        assert!(
            self.entries.len() < self.capacity,
            "log buffer overflow not drained before insert"
        );
        self.entries.push_back(entry);
        self.high_water = self.high_water.max(self.entries.len());
        InsertOutcome::Appended
    }

    /// Appends without any merge search (the no-merging ablation): every
    /// store consumes a slot, so same-address entries pile up in FIFO
    /// order. Recovery and commit flushing stay correct because both apply
    /// entries in order (last write wins) and undo in reverse order.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full.
    pub fn append(&mut self, entry: LogEntry) {
        assert!(
            self.entries.len() < self.capacity,
            "log buffer overflow not drained before append"
        );
        self.entries.push_back(entry);
        self.high_water = self.high_water.max(self.entries.len());
    }

    /// Whether the buffer is at capacity.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Whether inserting `entry` would overflow (full and no merge
    /// candidate).
    pub fn needs_overflow_for(&self, entry: &LogEntry) -> bool {
        self.entries.len() >= self.capacity
            && !self
                .entries
                .iter()
                .any(|e| e.addr() == entry.addr() && e.tag() == entry.tag())
    }

    /// Pops up to `n` oldest entries (FIFO) as an overflow batch (§III-F).
    pub fn take_overflow_batch(&mut self, n: usize) -> Vec<LogEntry> {
        let take = n.min(self.entries.len());
        self.entries.drain(..take).collect()
    }

    /// Sets the flush-bit of every entry whose word lies in `line`
    /// (parallel comparator match at line granularity, §III-D). Returns how
    /// many newly flipped from 0 to 1.
    pub fn mark_line_evicted(&mut self, line: LineAddr) -> usize {
        let mut flipped = 0;
        for e in self.entries.iter_mut() {
            if e.in_line(line) && !e.flush_bit() {
                e.set_flush_bit();
                flipped += 1;
            }
        }
        flipped
    }

    /// Drains all entries in FIFO order (commit: the log controller reads
    /// the new data out and deallocates the buffer).
    pub fn drain_all(&mut self) -> Vec<LogEntry> {
        self.entries.drain(..).collect()
    }

    /// The resident entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &LogEntry> + '_ {
        self.entries.iter()
    }

    /// Whether a word address currently has an entry for `tag`.
    pub fn contains(&self, tag: TxTag, addr: PhysAddr) -> bool {
        self.entries
            .iter()
            .any(|e| e.addr() == addr && e.tag() == tag)
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The highest occupancy the buffer ever reached (observability: how
    /// close the workload gets to triggering overflow flushes).
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_types::{ThreadId, TxId};

    fn tag(txid: u16) -> TxTag {
        TxTag::new(ThreadId::new(0), TxId::new(txid))
    }

    fn entry(txid: u16, addr: u64, old: u64, new: u64) -> LogEntry {
        LogEntry::new(
            tag(txid),
            PhysAddr::new(addr),
            Word::new(old),
            Word::new(new),
        )
    }

    #[test]
    fn appends_until_capacity() {
        let mut b = LogBuffer::new(3);
        for i in 0..3 {
            assert_eq!(b.insert(entry(1, i * 8, 0, i)), InsertOutcome::Appended);
        }
        assert_eq!(b.len(), 3);
        assert!(b.needs_overflow_for(&entry(1, 100 * 8, 0, 1)));
    }

    #[test]
    fn merging_does_not_grow_the_buffer() {
        let mut b = LogBuffer::new(2);
        b.insert(entry(1, 0, 0, 1));
        b.insert(entry(1, 8, 0, 1));
        // Full, but a same-address store still merges.
        assert!(!b.needs_overflow_for(&entry(1, 0, 1, 2)));
        assert_eq!(b.insert(entry(1, 0, 1, 2)), InsertOutcome::Merged);
        assert_eq!(b.len(), 2);
        let merged = b.entries().next().expect("entry present");
        assert_eq!(merged.old(), Word::new(0), "oldest old preserved");
        assert_eq!(merged.new_data(), Word::new(2), "newest new adopted");
    }

    #[test]
    fn no_merging_across_transactions() {
        // §III-C: "Silo merges logs without crossing threads or transactions."
        let mut b = LogBuffer::new(4);
        b.insert(entry(1, 0, 0, 1));
        assert_eq!(b.insert(entry(2, 0, 1, 2)), InsertOutcome::Appended);
        assert_eq!(b.len(), 2);
    }

    #[test]
    #[should_panic(expected = "overflow not drained")]
    fn inserting_into_full_buffer_panics() {
        let mut b = LogBuffer::new(1);
        b.insert(entry(1, 0, 0, 1));
        b.insert(entry(1, 8, 0, 1));
    }

    #[test]
    fn overflow_batch_is_fifo_oldest_first() {
        let mut b = LogBuffer::new(5);
        for i in 0..5 {
            b.insert(entry(1, i * 8, i, i + 1));
        }
        let batch = b.take_overflow_batch(3);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].addr(), PhysAddr::new(0));
        assert_eq!(batch[2].addr(), PhysAddr::new(16));
        assert_eq!(b.len(), 2);
        assert_eq!(b.entries().next().expect("entry").addr(), PhysAddr::new(24));
    }

    #[test]
    fn overflow_batch_larger_than_contents_takes_all() {
        let mut b = LogBuffer::new(4);
        b.insert(entry(1, 0, 0, 1));
        assert_eq!(b.take_overflow_batch(14).len(), 1);
        assert!(b.is_empty());
    }

    #[test]
    fn flush_bit_matches_at_line_granularity() {
        let mut b = LogBuffer::new(8);
        b.insert(entry(1, 0, 0, 1)); // line 0
        b.insert(entry(1, 56, 0, 1)); // line 0, last word
        b.insert(entry(1, 64, 0, 1)); // line 1
        let line0 = LineAddr::containing(PhysAddr::new(0));
        assert_eq!(b.mark_line_evicted(line0), 2);
        // Re-evicting flips nothing new.
        assert_eq!(b.mark_line_evicted(line0), 0);
        let flags: Vec<bool> = b.entries().map(|e| e.flush_bit()).collect();
        assert_eq!(flags, vec![true, true, false]);
    }

    #[test]
    fn drain_all_preserves_fifo_order_and_empties() {
        let mut b = LogBuffer::new(4);
        b.insert(entry(1, 8, 0, 1));
        b.insert(entry(1, 0, 0, 2));
        let drained = b.drain_all();
        assert_eq!(drained[0].addr(), PhysAddr::new(8));
        assert_eq!(drained[1].addr(), PhysAddr::new(0));
        assert!(b.is_empty());
    }

    #[test]
    fn contains_checks_tag_and_addr() {
        let mut b = LogBuffer::new(4);
        b.insert(entry(7, 0, 0, 1));
        assert!(b.contains(tag(7), PhysAddr::new(0)));
        assert!(!b.contains(tag(8), PhysAddr::new(0)));
        assert!(!b.contains(tag(7), PhysAddr::new(8)));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = LogBuffer::new(0);
    }
}
