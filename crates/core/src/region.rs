//! A thread's private area in the distributed PM log region (§III-B).

use silo_pm::PmDevice;
use silo_types::PhysAddr;

use crate::{Record, RECORD_BYTES};

/// Bytes reserved at the start of each thread's log area for the crash
/// header.
pub const AREA_HEADER_BYTES: usize = 8;

/// The per-area crash header: a little-endian `u64` counting the valid
/// record bytes that follow it.
///
/// In the common failure-free case the header is never written — the
/// head/tail cursor lives in on-chip flip-flops (Table I, "Log head and
/// tail: 16B per core") and commit truncates the log by resetting the
/// register. The battery-powered crash flush persists the header so
/// recovery knows how far to scan; recovery clears it when done.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AreaHeader {
    /// Valid record bytes after the header.
    pub valid_bytes: u64,
}

impl AreaHeader {
    /// Reads the header at `base`.
    pub fn read(pm: &PmDevice, base: PhysAddr) -> AreaHeader {
        let bytes = pm.peek(base, AREA_HEADER_BYTES);
        AreaHeader {
            valid_bytes: u64::from_le_bytes(bytes.try_into().expect("8 bytes")),
        }
    }

    /// Writes the header at `base` (battery path: direct device write).
    pub fn write(&self, pm: &mut PmDevice, base: PhysAddr) {
        pm.write(base, &self.valid_bytes.to_le_bytes());
    }
}

/// The on-chip cursor over one thread's log area: two registers (head =
/// area base, tail = next free offset) plus the area bound.
///
/// # Examples
///
/// ```
/// use silo_core::{ThreadLogArea, AREA_HEADER_BYTES, RECORD_BYTES};
/// use silo_types::PhysAddr;
///
/// let mut area = ThreadLogArea::new(PhysAddr::new(0x1000), PhysAddr::new(0x2000));
/// let first = area.reserve(2); // room for two records
/// assert_eq!(first.as_u64(), 0x1000 + AREA_HEADER_BYTES as u64);
/// assert_eq!(area.used_records(), 2);
/// area.truncate(); // commit: logs deleted by a register reset
/// assert_eq!(area.used_records(), 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadLogArea {
    base: PhysAddr,
    end: PhysAddr,
    /// Next free byte offset, relative to `base + AREA_HEADER_BYTES`.
    tail: u64,
}

impl ThreadLogArea {
    /// Creates a cursor over `[base, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the area cannot hold the header plus at least one record.
    pub fn new(base: PhysAddr, end: PhysAddr) -> Self {
        assert!(
            end.as_u64() >= base.as_u64() + (AREA_HEADER_BYTES + RECORD_BYTES) as u64,
            "log area too small"
        );
        ThreadLogArea { base, end, tail: 0 }
    }

    /// Reserves space for `records` consecutive records; returns the PM
    /// address to write them at and advances the tail register.
    ///
    /// # Panics
    ///
    /// Panics if the area is exhausted (16 MiB holds ~930 k records; a
    /// transaction that overflows that is outside the design envelope).
    pub fn reserve(&mut self, records: usize) -> PhysAddr {
        let addr = self.base.add(AREA_HEADER_BYTES as u64 + self.tail);
        let bytes = (records * RECORD_BYTES) as u64;
        assert!(
            addr.as_u64() + bytes <= self.end.as_u64(),
            "thread log area exhausted"
        );
        self.tail += bytes;
        addr
    }

    /// Commit truncation: resets the tail register; no PM write happens.
    pub fn truncate(&mut self) {
        self.tail = 0;
    }

    /// Rolls back the latest reservation of `records` records: the write
    /// behind it was dropped at power failure, so the tail must not cover
    /// bytes the device never received — a crash header bounding them
    /// would expose stale records of earlier, truncated transactions to
    /// the recovery scan.
    pub fn rewind(&mut self, records: usize) {
        let bytes = (records * RECORD_BYTES) as u64;
        debug_assert!(self.tail >= bytes, "rewind past the area base");
        self.tail = self.tail.saturating_sub(bytes);
    }

    /// Records currently reserved.
    pub fn used_records(&self) -> usize {
        self.tail as usize / RECORD_BYTES
    }

    /// Valid bytes currently reserved.
    pub fn used_bytes(&self) -> u64 {
        self.tail
    }

    /// The area base (header location).
    pub fn base(&self) -> PhysAddr {
        self.base
    }

    /// Persists the crash header describing the current tail (battery
    /// path).
    pub fn write_crash_header(&self, pm: &mut PmDevice) {
        AreaHeader {
            valid_bytes: self.tail,
        }
        .write(pm, self.base);
    }

    /// Reads back all valid records according to the persisted header
    /// (recovery path). Unparseable slots terminate the scan defensively.
    pub fn scan(pm: &PmDevice, base: PhysAddr) -> Vec<Record> {
        let header = AreaHeader::read(pm, base);
        let n = header.valid_bytes as usize / RECORD_BYTES;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let addr = base.add((AREA_HEADER_BYTES + i * RECORD_BYTES) as u64);
            let bytes: [u8; RECORD_BYTES] = pm
                .peek(addr, RECORD_BYTES)
                .try_into()
                .expect("peek returns requested length");
            match Record::decode(&bytes) {
                Some(rec) => out.push(rec),
                None => break,
            }
        }
        out
    }

    /// Clears the crash header after recovery completes.
    pub fn clear_header(pm: &mut PmDevice, base: PhysAddr) {
        AreaHeader { valid_bytes: 0 }.write(pm, base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_pm::PmDeviceConfig;
    use silo_types::{ThreadId, TxId, TxTag, Word};

    fn area() -> ThreadLogArea {
        ThreadLogArea::new(PhysAddr::new(0x10_000), PhysAddr::new(0x20_000))
    }

    fn record(txid: u16, addr: u64, data: u64) -> Record {
        Record {
            kind: crate::RecordKind::Undo,
            flush_bit: false,
            tag: TxTag::new(ThreadId::new(0), TxId::new(txid)),
            addr: PhysAddr::new(addr),
            data: Word::new(data),
        }
    }

    #[test]
    fn reserve_advances_contiguously() {
        let mut a = area();
        let r1 = a.reserve(14);
        let r2 = a.reserve(1);
        assert_eq!(
            r2.as_u64(),
            r1.as_u64() + 14 * RECORD_BYTES as u64,
            "batches are address-adjacent (§III-F)"
        );
        assert_eq!(a.used_records(), 15);
    }

    #[test]
    fn truncate_resets_without_pm_traffic() {
        let mut a = area();
        a.reserve(5);
        a.truncate();
        assert_eq!(a.used_bytes(), 0);
        let next = a.reserve(1);
        assert_eq!(next.as_u64(), 0x10_000 + AREA_HEADER_BYTES as u64);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhausted_area_panics() {
        let mut a = ThreadLogArea::new(PhysAddr::new(0), PhysAddr::new(64));
        a.reserve(4);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn undersized_area_rejected() {
        let _ = ThreadLogArea::new(PhysAddr::new(0), PhysAddr::new(8));
    }

    #[test]
    fn crash_header_round_trip_and_scan() {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        let mut a = area();
        // Write two records at reserved offsets (the battery flush path).
        let addr = a.reserve(2);
        let recs = [record(1, 0x100, 11), record(1, 0x108, 22)];
        let mut bytes = Vec::new();
        for r in &recs {
            bytes.extend_from_slice(&r.encode());
        }
        pm.write(addr, &bytes);
        a.write_crash_header(&mut pm);

        let scanned = ThreadLogArea::scan(&pm, a.base());
        assert_eq!(scanned, recs.to_vec());
    }

    #[test]
    fn scan_without_header_sees_nothing() {
        let pm = PmDevice::new(PmDeviceConfig::default());
        assert!(ThreadLogArea::scan(&pm, PhysAddr::new(0x10_000)).is_empty());
    }

    #[test]
    fn stale_records_beyond_header_are_ignored() {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        let mut a = area();
        // Two records persisted...
        let addr = a.reserve(2);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&record(1, 0x100, 1).encode());
        bytes.extend_from_slice(&record(1, 0x108, 2).encode());
        pm.write(addr, &bytes);
        a.write_crash_header(&mut pm);
        // ...then a "previous run" record lingering after them.
        let stale = a.base().add((AREA_HEADER_BYTES + 2 * RECORD_BYTES) as u64);
        pm.write(stale, &record(9, 0x900, 9).encode());
        assert_eq!(ThreadLogArea::scan(&pm, a.base()).len(), 2);
    }

    #[test]
    fn clear_header_hides_records_from_future_scans() {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        let mut a = area();
        let addr = a.reserve(1);
        pm.write(addr, &record(1, 0x100, 1).encode());
        a.write_crash_header(&mut pm);
        assert_eq!(ThreadLogArea::scan(&pm, a.base()).len(), 1);
        ThreadLogArea::clear_header(&mut pm, a.base());
        assert!(ThreadLogArea::scan(&pm, a.base()).is_empty());
    }
}
