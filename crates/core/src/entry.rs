//! The log entry (paper Fig 6) and its PM wire encoding.

use silo_types::{LineAddr, PhysAddr, ThreadId, TxId, TxTag, Word};

/// Size of one undo *or* redo record in the PM log region: 10 B metadata
/// (flags, tid, txid, 48-bit address) + one 8 B data word. The paper's
/// §III-F "each undo log entry is only 18B (including the log metadata and
/// the old data)".
pub const RECORD_BYTES: usize = 18;

/// Alias kept for readability at call sites dealing with overflow batches.
pub const UNDO_ENTRY_BYTES: usize = RECORD_BYTES;

/// An on-chip undo+redo log entry (Fig 6): both the old and the new word,
/// plus the metadata identifying the producing transaction.
///
/// On chip the entry is 26 B of payload; when written to the PM log region
/// it is split into 18 B undo or redo [`Record`]s, because a crash flush
/// never needs both halves for the same entry (§III-G: undo for
/// uncommitted, redo for committed transactions).
///
/// # Examples
///
/// ```
/// use silo_core::LogEntry;
/// use silo_types::{PhysAddr, ThreadId, TxId, TxTag, Word};
///
/// let e = LogEntry::new(
///     TxTag::new(ThreadId::new(1), TxId::new(3)),
///     PhysAddr::new(0x40),
///     Word::new(0xA0), // old
///     Word::new(0xA1), // new
/// );
/// assert!(!e.flush_bit());
/// assert_eq!(e.addr(), PhysAddr::new(0x40));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogEntry {
    tag: TxTag,
    addr: PhysAddr,
    old: Word,
    new: Word,
    flush_bit: bool,
}

impl LogEntry {
    /// Creates an entry for a store of `new` over `old` at `addr`
    /// (word-aligned), with the flush-bit clear.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not word-aligned — the log generator always
    /// records word-granular store addresses.
    pub fn new(tag: TxTag, addr: PhysAddr, old: Word, new: Word) -> Self {
        assert!(
            addr.is_word_aligned(),
            "log data address must be word-aligned"
        );
        LogEntry {
            tag,
            addr,
            old,
            new,
            flush_bit: false,
        }
    }

    /// The producing transaction's `(tid, txid)`.
    pub fn tag(&self) -> TxTag {
        self.tag
    }

    /// Physical address of the logged word.
    pub fn addr(&self) -> PhysAddr {
        self.addr
    }

    /// The pre-store value (undo data).
    pub fn old(&self) -> Word {
        self.old
    }

    /// The post-store value (redo data).
    pub fn new_data(&self) -> Word {
        self.new
    }

    /// Whether a cacheline eviction already carried this entry's new data
    /// to PM (§III-D): if set, the new data is *not* flushed at commit.
    pub fn flush_bit(&self) -> bool {
        self.flush_bit
    }

    /// Sets the flush-bit (called when the containing cacheline is evicted
    /// or when the entry overflows, §III-F case 2).
    pub fn set_flush_bit(&mut self) {
        self.flush_bit = true;
    }

    /// Merges a newer store to the same address into this entry: keeps the
    /// oldest `old`, adopts the newest `new` (§III-C log merging).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the addresses or tags differ — hardware
    /// comparators only merge within the same word and transaction.
    pub fn merge(&mut self, newer: &LogEntry) {
        debug_assert_eq!(self.addr, newer.addr, "merge requires equal addresses");
        debug_assert_eq!(self.tag, newer.tag, "no merging across transactions");
        self.new = newer.new;
    }

    /// Whether the logged word lies in cacheline `line` (the comparison the
    /// flush-bit comparators make by shifting the addr field, §III-D).
    pub fn in_line(&self, line: LineAddr) -> bool {
        line.contains(self.addr)
    }

    /// The undo half as a PM record.
    pub fn undo_record(&self) -> Record {
        Record {
            kind: RecordKind::Undo,
            flush_bit: self.flush_bit,
            tag: self.tag,
            addr: self.addr,
            data: self.old,
        }
    }

    /// The redo half as a PM record.
    pub fn redo_record(&self) -> Record {
        Record {
            kind: RecordKind::Redo,
            flush_bit: self.flush_bit,
            tag: self.tag,
            addr: self.addr,
            data: self.new,
        }
    }
}

/// Kind tag of a PM log-region record.
///
/// The encoding reserves 0 for "unwritten PM" so a scan can never confuse
/// erased space with a record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum RecordKind {
    /// Old-data record: revoke on recovery if the transaction did not
    /// commit.
    Undo = 1,
    /// New-data record: replay on recovery if the transaction committed.
    Redo = 2,
    /// Commit marker: the "(tid, txid)" ID tuple of §III-G.
    IdTuple = 3,
}

impl RecordKind {
    fn from_bits(bits: u8) -> Option<RecordKind> {
        match bits {
            1 => Some(RecordKind::Undo),
            2 => Some(RecordKind::Redo),
            3 => Some(RecordKind::IdTuple),
            _ => None,
        }
    }
}

/// One 18 B record in the PM log region.
///
/// Layout (little-endian):
///
/// ```text
/// byte 0      flags: bits 0-1 = kind, bit 7 = flush-bit
/// byte 1      tid
/// bytes 2-3   txid
/// bytes 4-9   addr (48 bits)
/// bytes 10-17 data word (old for undo, new for redo, zero for ID tuples)
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Record {
    /// What the record is.
    pub kind: RecordKind,
    /// The flush-bit as flushed (distinguishes overflowed undo logs from
    /// redo logs of committed transactions during recovery, §III-G).
    pub flush_bit: bool,
    /// Producing transaction.
    pub tag: TxTag,
    /// Logged word address (zero for ID tuples).
    pub addr: PhysAddr,
    /// Old or new word (zero for ID tuples).
    pub data: Word,
}

impl Record {
    /// A commit-marker record for `tag`.
    pub fn id_tuple(tag: TxTag) -> Record {
        Record {
            kind: RecordKind::IdTuple,
            flush_bit: false,
            tag,
            addr: PhysAddr::ZERO,
            data: Word::ZERO,
        }
    }

    /// Serializes to the 18 B wire format.
    pub fn encode(&self) -> [u8; RECORD_BYTES] {
        let mut out = [0u8; RECORD_BYTES];
        out[0] = self.kind as u8 | if self.flush_bit { 0x80 } else { 0 };
        out[1] = self.tag.tid().as_u8();
        out[2..4].copy_from_slice(&self.tag.txid().as_u16().to_le_bytes());
        out[4..10].copy_from_slice(&self.addr.as_u64().to_le_bytes()[..6]);
        out[10..18].copy_from_slice(&self.data.to_le_bytes());
        out
    }

    /// Parses a record; `None` for unwritten space (kind bits 0) or a
    /// corrupt kind.
    pub fn decode(bytes: &[u8; RECORD_BYTES]) -> Option<Record> {
        let kind = RecordKind::from_bits(bytes[0] & 0x03)?;
        let flush_bit = bytes[0] & 0x80 != 0;
        let tid = ThreadId::new(bytes[1]);
        let txid = TxId::new(u16::from_le_bytes([bytes[2], bytes[3]]));
        let mut addr_bytes = [0u8; 8];
        addr_bytes[..6].copy_from_slice(&bytes[4..10]);
        let addr = PhysAddr::new(u64::from_le_bytes(addr_bytes));
        let data = Word::from_le_bytes(bytes[10..18].try_into().expect("8 bytes"));
        Some(Record {
            kind,
            flush_bit,
            tag: TxTag::new(tid, txid),
            addr,
            data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag() -> TxTag {
        TxTag::new(ThreadId::new(5), TxId::new(1234))
    }

    fn entry() -> LogEntry {
        LogEntry::new(tag(), PhysAddr::new(0x1238), Word::new(10), Word::new(20))
    }

    #[test]
    fn entry_accessors() {
        let e = entry();
        assert_eq!(e.tag(), tag());
        assert_eq!(e.old(), Word::new(10));
        assert_eq!(e.new_data(), Word::new(20));
        assert!(!e.flush_bit());
    }

    #[test]
    #[should_panic(expected = "word-aligned")]
    fn unaligned_entry_rejected() {
        let _ = LogEntry::new(tag(), PhysAddr::new(3), Word::ZERO, Word::ZERO);
    }

    #[test]
    fn merge_keeps_oldest_old_newest_new() {
        let mut a = entry();
        let b = LogEntry::new(tag(), PhysAddr::new(0x1238), Word::new(20), Word::new(30));
        a.merge(&b);
        assert_eq!(a.old(), Word::new(10));
        assert_eq!(a.new_data(), Word::new(30));
    }

    #[test]
    fn line_matching_shifts_the_addr_field() {
        let e = entry(); // word at 0x1238, line 0x1200
        assert!(e.in_line(LineAddr::containing(PhysAddr::new(0x1200))));
        assert!(e.in_line(LineAddr::containing(PhysAddr::new(0x123f))));
        assert!(!e.in_line(LineAddr::containing(PhysAddr::new(0x1240))));
    }

    #[test]
    fn records_split_the_entry() {
        let mut e = entry();
        e.set_flush_bit();
        let u = e.undo_record();
        assert_eq!(u.kind, RecordKind::Undo);
        assert_eq!(u.data, Word::new(10));
        assert!(u.flush_bit);
        let r = e.redo_record();
        assert_eq!(r.kind, RecordKind::Redo);
        assert_eq!(r.data, Word::new(20));
    }

    #[test]
    fn record_round_trips_through_wire_format() {
        for kind in [RecordKind::Undo, RecordKind::Redo, RecordKind::IdTuple] {
            let rec = Record {
                kind,
                flush_bit: kind == RecordKind::Undo,
                tag: tag(),
                addr: PhysAddr::new(0x00de_adbe_ef00 & !7),
                data: Word::new(0x1122_3344_5566_7788),
            };
            let decoded = Record::decode(&rec.encode()).expect("valid record");
            assert_eq!(decoded, rec);
        }
    }

    #[test]
    fn unwritten_space_decodes_to_none() {
        assert_eq!(Record::decode(&[0u8; RECORD_BYTES]), None);
    }

    #[test]
    fn id_tuple_carries_only_the_tag() {
        let t = Record::id_tuple(tag());
        assert_eq!(t.kind, RecordKind::IdTuple);
        assert_eq!(t.addr, PhysAddr::ZERO);
        assert_eq!(t.data, Word::ZERO);
        let rt = Record::decode(&t.encode()).expect("valid");
        assert_eq!(rt.tag, tag());
    }

    #[test]
    fn forty_eight_bit_addresses_survive_encoding() {
        let rec = Record {
            kind: RecordKind::Redo,
            flush_bit: false,
            tag: tag(),
            addr: PhysAddr::new(((1u64 << 48) - 8) & !7),
            data: Word::ZERO,
        };
        let decoded = Record::decode(&rec.encode()).expect("valid");
        assert_eq!(decoded.addr, rec.addr);
    }

    #[test]
    fn record_size_matches_paper() {
        assert_eq!(RECORD_BYTES, 18);
        assert_eq!(entry().undo_record().encode().len(), 18);
    }
}
