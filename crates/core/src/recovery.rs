//! Post-crash recovery from the PM log region (§III-G, Fig 10g).

use silo_pm::PmDevice;
use silo_sim::RecoveryReport;
use silo_types::{FxHashSet, PhysAddr, TxTag};

use crate::{RecordKind, ThreadLogArea};

/// Recovers the PM data region from the per-thread log areas rooted at
/// `area_bases`.
///
/// Classification follows the paper exactly:
///
/// 1. ID tuples name the committed transactions.
/// 2. Records whose `(tid, txid)` is in the committed set are **redo**
///    logs; those with flush-bit 0 are replayed (forward, in log order).
///    Overflowed undo logs of committed transactions carry flush-bit 1 and
///    are discarded.
/// 3. All other records are **undo** logs of uncommitted transactions and
///    are revoked in *reverse* log order, so a word overflowed and
///    re-logged within one transaction unwinds to its original value.
///
/// Headers are cleared afterwards, making recovery idempotent.
pub fn recover(pm: &mut PmDevice, area_bases: &[PhysAddr]) -> RecoveryReport {
    let mut report = RecoveryReport::default();

    // Pass 1: find every committed transaction across all areas.
    let mut committed: FxHashSet<TxTag> = FxHashSet::default();
    for &base in area_bases {
        for rec in ThreadLogArea::scan(pm, base) {
            report.scanned_records += 1;
            if rec.kind == RecordKind::IdTuple {
                committed.insert(rec.tag);
            }
        }
    }
    report.committed_txs = committed.len() as u64;

    // Pass 2: replay / revoke per area.
    for &base in area_bases {
        let records = ThreadLogArea::scan(pm, base);
        // Redo replay, forward order.
        for rec in &records {
            match rec.kind {
                RecordKind::IdTuple => {}
                RecordKind::Redo if committed.contains(&rec.tag) && !rec.flush_bit => {
                    pm.write(rec.addr, &rec.data.to_le_bytes());
                    report.replayed_words += 1;
                }
                _ if committed.contains(&rec.tag) => {
                    // Overflowed undo logs of committed transactions
                    // (flush-bit 1) and already-flushed redo data.
                    report.discarded_logs += 1;
                }
                _ => {}
            }
        }
        // Undo revoke, reverse order.
        for rec in records.iter().rev() {
            if rec.kind == RecordKind::Undo && !committed.contains(&rec.tag) {
                pm.write(rec.addr, &rec.data.to_le_bytes());
                report.revoked_words += 1;
            }
        }
        ThreadLogArea::clear_header(pm, base);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Record, RECORD_BYTES};
    use silo_pm::PmDeviceConfig;
    use silo_types::{ThreadId, TxId, Word};

    const BASE: u64 = 0x10_000;

    fn tag(tid: u8, txid: u16) -> TxTag {
        TxTag::new(ThreadId::new(tid), TxId::new(txid))
    }

    fn write_area(pm: &mut PmDevice, base: u64, records: &[Record]) {
        let mut area = ThreadLogArea::new(PhysAddr::new(base), PhysAddr::new(base + 0x10_000));
        let addr = area.reserve(records.len());
        let mut bytes = Vec::with_capacity(records.len() * RECORD_BYTES);
        for r in records {
            bytes.extend_from_slice(&r.encode());
        }
        pm.write(addr, &bytes);
        area.write_crash_header(pm);
    }

    fn undo(t: TxTag, addr: u64, old: u64, fb: bool) -> Record {
        Record {
            kind: RecordKind::Undo,
            flush_bit: fb,
            tag: t,
            addr: PhysAddr::new(addr),
            data: Word::new(old),
        }
    }

    fn redo(t: TxTag, addr: u64, new: u64) -> Record {
        Record {
            kind: RecordKind::Redo,
            flush_bit: false,
            tag: t,
            addr: PhysAddr::new(addr),
            data: Word::new(new),
        }
    }

    #[test]
    fn committed_tx_redo_is_replayed() {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        let t = tag(0, 3);
        write_area(
            &mut pm,
            BASE,
            &[
                redo(t, 0x100, 0xA2),
                redo(t, 0x108, 0xC1),
                Record::id_tuple(t),
            ],
        );
        let report = recover(&mut pm, &[PhysAddr::new(BASE)]);
        assert_eq!(report.committed_txs, 1);
        assert_eq!(report.replayed_words, 2);
        assert_eq!(pm.peek_word(PhysAddr::new(0x100)), Word::new(0xA2));
        assert_eq!(pm.peek_word(PhysAddr::new(0x108)), Word::new(0xC1));
    }

    #[test]
    fn uncommitted_tx_undo_is_revoked() {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        // Partial update leaked to the data region before the crash.
        pm.write_word(PhysAddr::new(0x200), Word::new(0xD1));
        let t = tag(1, 7);
        write_area(&mut pm, BASE, &[undo(t, 0x200, 0xD0, true)]);
        let report = recover(&mut pm, &[PhysAddr::new(BASE)]);
        assert_eq!(report.revoked_words, 1);
        assert_eq!(pm.peek_word(PhysAddr::new(0x200)), Word::new(0xD0));
    }

    #[test]
    fn overflowed_undo_of_committed_tx_is_discarded() {
        // Fig 10g: committed Tx3's redo logs replay; its earlier overflowed
        // undo logs (flush-bit 1) must be identified and skipped.
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        pm.write_word(PhysAddr::new(0x300), Word::new(0xB1)); // current value
        let t = tag(0, 3);
        write_area(
            &mut pm,
            BASE,
            &[
                undo(t, 0x300, 0xB0, true), // overflowed undo: must NOT revoke
                redo(t, 0x300, 0xB2),
                Record::id_tuple(t),
            ],
        );
        let report = recover(&mut pm, &[PhysAddr::new(BASE)]);
        assert_eq!(report.discarded_logs, 1);
        assert_eq!(pm.peek_word(PhysAddr::new(0x300)), Word::new(0xB2));
    }

    #[test]
    fn reverse_undo_unwinds_relogged_words() {
        // One tx overflowed a word's undo log, then re-logged a later store
        // to the same word. Reverse application restores the ORIGINAL value.
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        pm.write_word(PhysAddr::new(0x400), Word::new(3)); // value at crash
        let t = tag(0, 9);
        write_area(
            &mut pm,
            BASE,
            &[
                undo(t, 0x400, 1, true),  // original value 1 (overflowed first)
                undo(t, 0x400, 2, false), // later store saw 2
            ],
        );
        recover(&mut pm, &[PhysAddr::new(BASE)]);
        assert_eq!(pm.peek_word(PhysAddr::new(0x400)), Word::new(1));
    }

    #[test]
    fn mixed_threads_fig10_scenario() {
        // Thread 1's Tx3 committed (replay A1->A2, C0->C1); thread 2's Tx2
        // did not (revoke D1->D0, F1->F0).
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        let a = 0x1000;
        let c = 0x1100;
        let d = 0x1200;
        let f = 0x1300;
        pm.write_word(PhysAddr::new(a), Word::new(0xA1));
        pm.write_word(PhysAddr::new(d), Word::new(0xD1));
        pm.write_word(PhysAddr::new(f), Word::new(0xF1));
        let t1 = tag(1, 3);
        let t2 = tag(2, 2);
        write_area(
            &mut pm,
            BASE,
            &[redo(t1, a, 0xA2), redo(t1, c, 0xC1), Record::id_tuple(t1)],
        );
        write_area(
            &mut pm,
            BASE + 0x10_000,
            &[undo(t2, d, 0xD0, true), undo(t2, f, 0xF0, true)],
        );
        let report = recover(
            &mut pm,
            &[PhysAddr::new(BASE), PhysAddr::new(BASE + 0x10_000)],
        );
        assert_eq!(report.replayed_words, 2);
        assert_eq!(report.revoked_words, 2);
        assert_eq!(pm.peek_word(PhysAddr::new(a)), Word::new(0xA2));
        assert_eq!(pm.peek_word(PhysAddr::new(c)), Word::new(0xC1));
        assert_eq!(pm.peek_word(PhysAddr::new(d)), Word::new(0xD0));
        assert_eq!(pm.peek_word(PhysAddr::new(f)), Word::new(0xF0));
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        let t = tag(0, 1);
        write_area(&mut pm, BASE, &[redo(t, 0x100, 5), Record::id_tuple(t)]);
        let first = recover(&mut pm, &[PhysAddr::new(BASE)]);
        assert_eq!(first.replayed_words, 1);
        let second = recover(&mut pm, &[PhysAddr::new(BASE)]);
        assert_eq!(second.replayed_words, 0, "headers were cleared");
        assert_eq!(pm.peek_word(PhysAddr::new(0x100)), Word::new(5));
    }

    #[test]
    fn empty_region_recovers_to_nothing() {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        let report = recover(&mut pm, &[PhysAddr::new(BASE)]);
        assert_eq!(report, RecoveryReport::default());
    }
}
