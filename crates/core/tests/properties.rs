//! Property tests: log-buffer merge invariants, record codec, and
//! recovery correctness on randomly generated log regions.

#![cfg(feature = "proptest")]

use std::collections::HashMap;

use proptest::prelude::*;
use silo_core::{
    recover_log_region, InsertOutcome, LogBuffer, LogEntry, Record, RecordKind, ThreadLogArea,
    RECORD_BYTES,
};
use silo_pm::{PmDevice, PmDeviceConfig};
use silo_types::{PhysAddr, ThreadId, TxId, TxTag, Word};

fn tag(tid: u8, txid: u16) -> TxTag {
    TxTag::new(ThreadId::new(tid), TxId::new(txid))
}

proptest! {
    /// After any insert sequence (within one transaction), the buffer
    /// holds at most one entry per word address, with the FIRST old value
    /// and the LAST new value of that word.
    #[test]
    fn merge_keeps_oldest_old_and_newest_new(
        stores in prop::collection::vec((0u64..12, any::<u64>()), 1..20),
    ) {
        let t = tag(0, 1);
        let mut buf = LogBuffer::new(32);
        let mut first_old: HashMap<u64, Word> = HashMap::new();
        let mut last_new: HashMap<u64, Word> = HashMap::new();
        let mut current: HashMap<u64, Word> = HashMap::new();
        for (slot, value) in &stores {
            let addr = PhysAddr::new(slot * 8);
            let old = current.get(slot).copied().unwrap_or(Word::ZERO);
            let new = Word::new(*value);
            buf.insert(LogEntry::new(t, addr, old, new));
            first_old.entry(*slot).or_insert(old);
            last_new.insert(*slot, new);
            current.insert(*slot, new);
        }
        let mut seen = std::collections::HashSet::new();
        for e in buf.entries() {
            let slot = e.addr().as_u64() / 8;
            prop_assert!(seen.insert(slot), "duplicate entry for one word");
            prop_assert_eq!(e.old(), first_old[&slot]);
            prop_assert_eq!(e.new_data(), last_new[&slot]);
        }
        prop_assert_eq!(buf.len(), first_old.len());
    }

    /// Entries from different transactions never merge.
    #[test]
    fn no_cross_transaction_merging(
        txids in prop::collection::vec(1u16..5, 2..16),
    ) {
        let mut buf = LogBuffer::new(64);
        let mut appended = 0;
        let mut seen = std::collections::HashSet::new();
        for txid in &txids {
            let outcome = buf.insert(LogEntry::new(
                tag(0, *txid),
                PhysAddr::new(0),
                Word::ZERO,
                Word::new(*txid as u64),
            ));
            if seen.insert(*txid) {
                prop_assert_eq!(outcome, InsertOutcome::Appended);
                appended += 1;
            } else {
                prop_assert_eq!(outcome, InsertOutcome::Merged);
            }
        }
        prop_assert_eq!(buf.len(), appended);
    }

    /// The 18 B wire codec round-trips every representable record.
    #[test]
    fn record_codec_roundtrip(
        kind in 1u8..4,
        flush in any::<bool>(),
        tid in any::<u8>(),
        txid in any::<u16>(),
        word_slot in 0u64..(1u64 << 45),
        data in any::<u64>(),
    ) {
        let rec = Record {
            kind: match kind {
                1 => RecordKind::Undo,
                2 => RecordKind::Redo,
                _ => RecordKind::IdTuple,
            },
            flush_bit: flush,
            tag: tag(tid, txid),
            addr: PhysAddr::new(word_slot * 8),
            data: Word::new(data),
        };
        prop_assert_eq!(Record::decode(&rec.encode()), Some(rec));
    }

    /// Recovery semantics on random log regions: committed transactions'
    /// redo records replay in order (last write wins); uncommitted
    /// transactions' undo records unwind in reverse (first old wins);
    /// recovery is idempotent.
    #[test]
    fn recovery_replays_and_revokes_correctly(
        committed in any::<bool>(),
        entries in prop::collection::vec((0u64..6, any::<u64>(), any::<u64>()), 1..12),
    ) {
        const BASE: u64 = 0x10_000;
        let t = tag(1, 7);
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        let mut area = ThreadLogArea::new(PhysAddr::new(BASE), PhysAddr::new(BASE + 0x10_000));

        // Data region state "at the crash": the newest value of each word.
        let mut first_old: HashMap<u64, u64> = HashMap::new();
        let mut last_new: HashMap<u64, u64> = HashMap::new();
        let mut records = Vec::new();
        for (slot, old, new) in &entries {
            first_old.entry(*slot).or_insert(*old);
            last_new.insert(*slot, *new);
            records.push(Record {
                kind: if committed { RecordKind::Redo } else { RecordKind::Undo },
                flush_bit: false,
                tag: t,
                addr: PhysAddr::new(slot * 8),
                data: Word::new(if committed { *new } else { *old }),
            });
        }
        if committed {
            records.push(Record::id_tuple(t));
        }
        let addr = area.reserve(records.len());
        let mut bytes = Vec::with_capacity(records.len() * RECORD_BYTES);
        for r in &records {
            bytes.extend_from_slice(&r.encode());
        }
        pm.write(addr, &bytes);
        area.write_crash_header(&mut pm);

        recover_log_region(&mut pm, &[PhysAddr::new(BASE)]);
        for (slot, _, _) in &entries {
            let expected = if committed { last_new[slot] } else { first_old[slot] };
            prop_assert_eq!(
                pm.peek_word(PhysAddr::new(slot * 8)).as_u64(),
                expected,
                "slot {}", slot
            );
        }
        // Idempotence.
        let again = recover_log_region(&mut pm, &[PhysAddr::new(BASE)]);
        prop_assert_eq!(again.replayed_words + again.revoked_words, 0);
    }

    /// Flush-bit matching flips exactly the entries in the evicted line.
    #[test]
    fn flush_bit_matches_exactly_the_line(
        slots in prop::collection::vec(0u64..32, 1..20),
        evict_line in 0u64..4,
    ) {
        let t = tag(0, 1);
        let mut buf = LogBuffer::new(32);
        let mut expect = 0;
        let mut distinct = std::collections::HashSet::new();
        for slot in &slots {
            let addr = PhysAddr::new(slot * 8); // 8 words per 64B line
            if distinct.insert(*slot) && slot / 8 == evict_line {
                expect += 1;
            }
            buf.insert(LogEntry::new(t, addr, Word::ZERO, Word::new(1)));
        }
        let line = silo_types::LineAddr::containing(PhysAddr::new(evict_line * 64));
        prop_assert_eq!(buf.mark_line_evicted(line), expect);
        prop_assert_eq!(buf.mark_line_evicted(line), 0, "second eviction flips nothing");
    }
}
