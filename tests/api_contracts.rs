//! API contracts: thread-safety markers and common-trait coverage of the
//! public surface (the C-SEND-SYNC / C-COMMON-TRAITS guidelines), plus a
//! few whole-API smoke checks that would catch accidental breaking
//! changes.

use silo::baselines::{BaseScheme, FwbScheme, LadScheme, MorLogScheme, SwLogScheme};
use silo::cache::{CacheConfig, CacheHierarchy, HierarchyConfig};
use silo::core::{LogBuffer, LogEntry, Record, SiloOptions, SiloScheme, ThreadLogArea};
use silo::memctrl::{MemCtrl, MemCtrlConfig};
use silo::pm::{Media, OnPmBuffer, PmDevice, PmDeviceConfig, WearTracker};
use silo::sim::{Machine, SimConfig, SimStats, Transaction, TxOracle};
use silo::types::{
    Cycles, LineAddr, PhysAddr, SplitMix64, ThreadId, TxId, TxTag, Word, Xoshiro256,
};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn value_types_are_send_and_sync() {
    assert_send_sync::<PhysAddr>();
    assert_send_sync::<LineAddr>();
    assert_send_sync::<Word>();
    assert_send_sync::<Cycles>();
    assert_send_sync::<TxTag>();
    assert_send_sync::<SplitMix64>();
    assert_send_sync::<Xoshiro256>();
}

#[test]
fn substrate_types_are_send_and_sync() {
    assert_send_sync::<Media>();
    assert_send_sync::<OnPmBuffer>();
    assert_send_sync::<PmDevice>();
    assert_send_sync::<WearTracker>();
    assert_send_sync::<CacheHierarchy>();
    assert_send_sync::<MemCtrl>();
    assert_send_sync::<Machine>();
    assert_send_sync::<TxOracle>();
    assert_send_sync::<SimStats>();
    assert_send_sync::<Transaction>();
}

#[test]
fn scheme_types_are_send_and_sync() {
    assert_send_sync::<SiloScheme>();
    assert_send_sync::<BaseScheme>();
    assert_send_sync::<FwbScheme>();
    assert_send_sync::<MorLogScheme>();
    assert_send_sync::<LadScheme>();
    assert_send_sync::<SwLogScheme>();
    assert_send_sync::<LogBuffer>();
    assert_send_sync::<LogEntry>();
    assert_send_sync::<Record>();
    assert_send_sync::<ThreadLogArea>();
}

#[test]
fn configs_are_cloneable_and_debuggable() {
    fn check<T: Clone + std::fmt::Debug>(value: T) {
        let copy = value.clone();
        assert!(!format!("{copy:?}").is_empty());
    }
    check(SimConfig::table_ii(4));
    check(MemCtrlConfig::table_ii());
    check(HierarchyConfig::table_ii(2));
    check(CacheConfig::new(4096, 4));
    check(PmDeviceConfig::default());
    check(SiloOptions::default());
}

#[test]
fn schemes_can_run_concurrently_on_threads() {
    // Whole simulations are independent values: they parallelize across
    // host threads without any shared state.
    let handles: Vec<_> = (0..4)
        .map(|seed| {
            std::thread::spawn(move || {
                let config = SimConfig::table_ii(2);
                let mut scheme = SiloScheme::new(&config);
                let w = silo::workloads::BankWorkload {
                    accounts: 32,
                    initial_balance: 10,
                };
                use silo::workloads::Workload;
                let streams = w.raw_streams(2, 50, seed);
                silo::sim::Engine::new(&config, &mut scheme)
                    .run(streams, None)
                    .stats
                    .txs_committed
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().expect("no panic"), (50 + 1) * 2);
    }
}

#[test]
fn ids_order_and_hash_consistently() {
    use std::collections::HashSet;
    let mut set = HashSet::new();
    for tid in 0..4u8 {
        for txid in 0..4u16 {
            set.insert(TxTag::new(ThreadId::new(tid), TxId::new(txid)));
        }
    }
    assert_eq!(set.len(), 16);
    let mut v: Vec<_> = set.into_iter().collect();
    v.sort();
    assert_eq!(v[0], TxTag::new(ThreadId::new(0), TxId::new(0)));
    assert_eq!(v[15], TxTag::new(ThreadId::new(3), TxId::new(3)));
}
