//! Property test: atomic durability holds for random transaction streams
//! crashed at random cycles, under every logging scheme.
//!
//! This is the repository's strongest correctness statement: whatever the
//! write pattern and wherever the power fails, the recovered PM image is
//! all-or-nothing per transaction.

#![cfg(feature = "proptest")]

use proptest::prelude::*;
use silo::baselines::{
    BaseScheme, EadrSwLogScheme, FwbScheme, LadScheme, MorLogScheme, SwLogScheme,
};
use silo::core::{SiloOptions, SiloScheme};
use silo::sim::{Engine, LoggingScheme, SimConfig, Transaction};
use silo::types::{Cycles, PhysAddr, Word};

/// A compact random workload description: per core, a list of
/// transactions, each a list of (word slot, value) writes.
type Spec = Vec<Vec<Vec<(u64, u64)>>>;

fn spec_strategy() -> impl Strategy<Value = Spec> {
    let tx = prop::collection::vec((0u64..24, 1u64..1_000_000), 1..10);
    let stream = prop::collection::vec(tx, 1..6);
    prop::collection::vec(stream, 1..3)
}

fn build_streams(spec: &Spec) -> Vec<Vec<Transaction>> {
    spec.iter()
        .enumerate()
        .map(|(core, stream)| {
            // Per-core disjoint slot pools satisfy the isolation assumption.
            let base = core as u64 * (1 << 20);
            stream
                .iter()
                .map(|writes| {
                    let mut b = Transaction::builder();
                    for &(slot, value) in writes {
                        b = b.write(PhysAddr::new(base + slot * 8), Word::new(value));
                    }
                    b.build()
                })
                .collect()
        })
        .collect()
}

fn check_scheme(
    make: impl Fn(&SimConfig) -> Box<dyn LoggingScheme>,
    spec: &Spec,
    crash_at: u64,
) -> Result<(), TestCaseError> {
    let config = SimConfig::table_ii(spec.len());
    let mut scheme = make(&config);
    let name = scheme.name();
    let out =
        Engine::new(&config, scheme.as_mut()).run(build_streams(spec), Some(Cycles::new(crash_at)));
    let crash = out.crash.expect("crash injected");
    prop_assert!(
        crash.consistency.is_consistent(),
        "[{}] crash at {}: {:?}",
        name,
        crash_at,
        crash.consistency.violations
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn silo_recovers_any_random_crash(spec in spec_strategy(), crash_at in 0u64..30_000) {
        check_scheme(|c| Box::new(SiloScheme::new(c)), &spec, crash_at)?;
    }

    #[test]
    fn silo_with_slow_drain_recovers_any_random_crash(
        spec in spec_strategy(),
        crash_at in 0u64..30_000,
        drain in prop_oneof![Just(0u64), Just(64), Just(100_000), Just(u64::MAX / 2)],
    ) {
        check_scheme(
            |c| {
                Box::new(SiloScheme::with_options(
                    c,
                    SiloOptions { ipu_drain_delay: drain, ..SiloOptions::default() },
                ))
            },
            &spec,
            crash_at,
        )?;
    }

    #[test]
    fn base_recovers_any_random_crash(spec in spec_strategy(), crash_at in 0u64..30_000) {
        check_scheme(|c| Box::new(BaseScheme::new(c)), &spec, crash_at)?;
    }

    #[test]
    fn fwb_recovers_any_random_crash(spec in spec_strategy(), crash_at in 0u64..30_000) {
        check_scheme(|c| Box::new(FwbScheme::new(c)), &spec, crash_at)?;
    }

    #[test]
    fn morlog_recovers_any_random_crash(spec in spec_strategy(), crash_at in 0u64..30_000) {
        check_scheme(|c| Box::new(MorLogScheme::new(c)), &spec, crash_at)?;
    }

    #[test]
    fn lad_recovers_any_random_crash(spec in spec_strategy(), crash_at in 0u64..30_000) {
        check_scheme(|c| Box::new(LadScheme::new(c)), &spec, crash_at)?;
    }

    #[test]
    fn swlog_recovers_any_random_crash(spec in spec_strategy(), crash_at in 0u64..30_000) {
        check_scheme(|c| Box::new(SwLogScheme::new(c)), &spec, crash_at)?;
    }

    #[test]
    fn eadr_swlog_recovers_any_random_crash(spec in spec_strategy(), crash_at in 0u64..30_000) {
        check_scheme(|c| Box::new(EadrSwLogScheme::new(c)), &spec, crash_at)?;
    }

    /// Transactions big enough to overflow Silo's log buffer several times
    /// over, crashed anywhere.
    #[test]
    fn silo_overflowing_transactions_recover(
        words in 30u64..200,
        crash_at in 0u64..60_000,
        txs in 1usize..4,
    ) {
        let spec: Spec = vec![(0..txs)
            .map(|t| (0..words).map(|i| (i, t as u64 * 1_000 + i + 1)).collect())
            .collect()];
        check_scheme(|c| Box::new(SiloScheme::new(c)), &spec, crash_at)?;
    }
}
