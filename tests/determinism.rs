//! Reproducibility: identical seeds produce bit-identical simulations for
//! every scheme, and different seeds genuinely change the workload.

use silo::baselines::{BaseScheme, FwbScheme, LadScheme, MorLogScheme};
use silo::core::SiloScheme;
use silo::sim::{Engine, LoggingScheme, SimConfig, SimStats};
use silo::workloads::{workload_by_name, Workload};

fn run(scheme_idx: usize, seed: u64) -> SimStats {
    let config = SimConfig::table_ii(4);
    let mut scheme: Box<dyn LoggingScheme> = match scheme_idx {
        0 => Box::new(BaseScheme::new(&config)),
        1 => Box::new(FwbScheme::new(&config)),
        2 => Box::new(MorLogScheme::new(&config)),
        3 => Box::new(LadScheme::new(&config)),
        _ => Box::new(SiloScheme::new(&config)),
    };
    let w = workload_by_name("TPCC").expect("tpcc");
    let streams = w.raw_streams(4, 60, seed);
    Engine::new(&config, scheme.as_mut())
        .run(streams, None)
        .stats
}

#[test]
fn same_seed_same_everything() {
    for scheme_idx in 0..5 {
        let a = run(scheme_idx, 99);
        let b = run(scheme_idx, 99);
        assert_eq!(a.sim_cycles, b.sim_cycles, "scheme {scheme_idx}");
        assert_eq!(a.txs_committed, b.txs_committed, "scheme {scheme_idx}");
        assert_eq!(a.pm, b.pm, "scheme {scheme_idx}");
        assert_eq!(a.mc, b.mc, "scheme {scheme_idx}");
        assert_eq!(a.cache, b.cache, "scheme {scheme_idx}");
        assert_eq!(a.scheme_stats, b.scheme_stats, "scheme {scheme_idx}");
    }
}

#[test]
fn different_seed_different_execution() {
    let a = run(4, 1);
    let b = run(4, 2);
    assert_eq!(a.txs_committed, b.txs_committed, "same workload size");
    assert_ne!(
        (a.sim_cycles, a.pm.accepted_bytes),
        (b.sim_cycles, b.pm.accepted_bytes),
        "different seeds must explore different address streams"
    );
}

#[test]
fn crash_runs_are_deterministic_too() {
    use silo::types::Cycles;
    let config = SimConfig::table_ii(2);
    let runs: Vec<_> = (0..2)
        .map(|_| {
            let mut scheme = SiloScheme::new(&config);
            let w = workload_by_name("Btree").expect("btree");
            let streams = w.raw_streams(2, 50, 5);
            let out = Engine::new(&config, &mut scheme).run(streams, Some(Cycles::new(9_999)));
            let crash = out.crash.expect("crash injected");
            (
                crash.committed_txs,
                crash.inflight_txs,
                crash.recovery,
                out.stats.pm,
            )
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
}
