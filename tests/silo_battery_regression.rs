//! Regression pins for Silo oracle violations found by `evaluate
//! crashfuzz` under the bounded-battery and torn-line fault models.
//!
//! Root cause (fixed in `SiloScheme::flush_pending`): the machine counts a
//! `WpqAdmit` durability event *before* forwarding bytes to the PM device,
//! so an event-indexed crash point can trip power on the very admission a
//! pending in-place update is riding. The drain loop used to pop the entry
//! from the battery-backed pending queue before issuing the write; when
//! that write was then silently dropped by the tripped device, the
//! committed word lost both its in-place data and its redo record — the
//! entry was no longer in the queue `on_crash` flushes — and recovery had
//! nothing to replay ("committed write lost or corrupted", actual = 0).
//! The fix keeps the entry at the front of the queue until the device has
//! accepted the write, mirroring a log controller that releases its copy
//! only on successful WPQ admission.

use silo::core::SiloScheme;
use silo::sim::{CrashPlan, Engine, FaultModel, LoggingScheme, SimConfig};
use silo::workloads::{workload_by_name, Workload};

/// Runs the exact shrunk repro emitted by `evaluate crashfuzz` and
/// returns the violation descriptions (empty = consistent).
fn run_repro(bench: &str, txs_per_core: usize, point: u64, fault: FaultModel) -> Vec<String> {
    let cores = 2;
    let config = SimConfig::table_ii(cores);
    let workload = workload_by_name(bench).expect("bench resolvable");
    let trace = workload.build_trace(cores, txs_per_core, 42);
    let mut scheme: Box<dyn LoggingScheme> = Box::new(SiloScheme::new(&config));
    let plan = CrashPlan::at_event(point).with_fault(fault);
    let out = Engine::new(&config, scheme.as_mut()).run_with_plan(&trace, Some(plan));
    let crash = out.crash.expect("crash injected");
    crash
        .consistency
        .violations
        .iter()
        .map(|v| {
            format!(
                "{}: addr={:#x} expected={:#x} actual={:#x} (ambiguous_txs={})",
                v.kind,
                v.addr.as_u64(),
                v.expected.as_u64(),
                v.actual.as_u64(),
                crash.ambiguous_txs,
            )
        })
        .collect()
}

/// `evaluate crashfuzz --scheme Silo --bench Hash --txs 62 --seed 42
/// --fault battery --battery-bytes 65536 --point 13589`
///
/// The long-horizon finding from the checkpointed crashfuzz sweeps: a
/// background pending-IPU drain for an earlier committed transaction was
/// interrupted by the armed event, dropping one word of committed data.
#[test]
fn silo_hash_long_horizon_battery_point_is_consistent() {
    let violations = run_repro("hash", 31, 13589, FaultModel::bounded_battery(65536));
    assert!(violations.is_empty(), "{violations:#?}");
}

/// `evaluate crashfuzz --scheme Silo --bench zipfmix --txs 16 --seed 42
/// --fault battery --battery-bytes 65536 --point 1169`
///
/// The same race surfaced immediately by the multi-tenant zipfian mix
/// added with the open-system arrival layer.
#[test]
fn silo_zipfmix_battery_point_is_consistent() {
    let violations = run_repro("zipfmix", 8, 1169, FaultModel::bounded_battery(65536));
    assert!(violations.is_empty(), "{violations:#?}");
}

/// The torn-line model at the zipfmix point: with a perfect budget the
/// drain itself cannot lose data, so a violation here can only come from
/// the pre-drain admission race — it must stay fixed independently.
#[test]
fn silo_zipfmix_torn_line_point_is_consistent() {
    let violations = run_repro("zipfmix", 8, 1169, FaultModel::torn_line(64));
    assert!(violations.is_empty(), "{violations:#?}");
}
