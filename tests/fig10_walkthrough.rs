//! The paper's Fig 10 worked example, end to end.
//!
//! Thread 1 (core 0) executes Tx1 {A=A1, B=B1} and Tx3 {A=A2, C=C1};
//! thread 2 (core 1) executes Tx2 {D=D1, E=E1, F=F1, E=E2, G=G1, H=H1}.
//! A power failure strikes while Tx2 is still running but after Tx3
//! committed (Fig 10f). After recovery (Fig 10g), PM must be in the
//! Fig 10h state: the committed transactions' updates persisted (A=A2,
//! B=B1, C=C1) and the uncommitted transaction's partial updates revoked
//! (D..H back to their initial values).

use silo::core::{SiloOptions, SiloScheme};
use silo::sim::{Engine, SimConfig, Transaction};
use silo::types::{Cycles, PhysAddr, Word};

const A: u64 = 0x1000;
const B: u64 = 0x1040;
const C: u64 = 0x1080;
const D: u64 = 0x40_0000;
const E: u64 = 0x40_0040;
const F: u64 = 0x40_0080;
const G: u64 = 0x40_00c0;
const H: u64 = 0x40_0100;

const A1: u64 = 0xA1;
const A2: u64 = 0xA2;
const B1: u64 = 0xB1;
const C1: u64 = 0xC1;

fn w(addr: u64, v: u64) -> (PhysAddr, Word) {
    (PhysAddr::new(addr), Word::new(v))
}

fn tx(writes: &[(PhysAddr, Word)], pad: u32) -> Transaction {
    let mut b = Transaction::builder();
    for &(a, v) in writes {
        b = b.write(a, v).compute(pad);
    }
    b.build()
}

fn run_fig10(crash_at: u64, drain_delay: u64) -> silo::sim::RunOutcome {
    let config = SimConfig::table_ii(2);
    let mut silo = SiloScheme::with_options(
        &config,
        SiloOptions {
            ipu_drain_delay: drain_delay,
            ..SiloOptions::default()
        },
    );
    let t1 = vec![tx(&[w(A, A1), w(B, B1)], 1), tx(&[w(A, A2), w(C, C1)], 1)];
    // Tx2 is one long transaction with compute padding so the crash lands
    // while it still runs.
    let t2 = vec![tx(
        &[
            w(D, 0xD1),
            w(E, 0xE1),
            w(F, 0xF1),
            w(E, 0xE2), // merged on chip: oldest old E0, newest new E2
            w(G, 0x61),
            w(H, 0x81),
        ],
        400,
    )];
    Engine::new(&config, &mut silo).run(vec![t1, t2], Some(Cycles::new(crash_at)))
}

#[test]
fn fig10_crash_recovers_to_fig10h_state() {
    // Pick the crash so both of T1's transactions committed and Tx2 is
    // in flight; the long drain delay keeps Tx3 in the
    // committed-but-unflushed window of Fig 10f (redo flush + ID tuple).
    let out = run_fig10(2_000, 1_000_000);
    let crash = out.crash.as_ref().expect("crash injected");
    assert_eq!(crash.committed_txs, 2, "Tx1 and Tx3 committed");
    assert_eq!(crash.inflight_txs, 1, "Tx2 was in flight");

    // Fig 10g: recovery replayed T1's redo logs and revoked T2's updates.
    assert!(
        crash.recovery.committed_txs >= 1,
        "ID tuples identified committed transactions"
    );
    assert!(crash.recovery.replayed_words > 0, "redo replay happened");
    assert!(crash.consistency.is_consistent(), "{:?}", crash.consistency);

    // Fig 10h: the PM data region, word by word.
    let pm = &out.pm;
    assert_eq!(
        pm.peek_word(PhysAddr::new(A)),
        Word::new(A2),
        "A at its Tx3 value"
    );
    assert_eq!(
        pm.peek_word(PhysAddr::new(B)),
        Word::new(B1),
        "B at its Tx1 value"
    );
    assert_eq!(
        pm.peek_word(PhysAddr::new(C)),
        Word::new(C1),
        "C at its Tx3 value"
    );
    for (name, addr) in [("D", D), ("E", E), ("F", F), ("G", G), ("H", H)] {
        assert_eq!(
            pm.peek_word(PhysAddr::new(addr)),
            Word::ZERO,
            "{name} must be revoked to its initial value"
        );
    }
}

#[test]
fn fig10_merged_log_restores_oldest_value() {
    // E is written twice in Tx2 (E1 then E2); the merged entry's undo data
    // must be E0, so recovery restores the ORIGINAL value, not E1.
    let out = run_fig10(2_000, 1_000_000);
    assert_eq!(out.pm.peek_word(PhysAddr::new(E)), Word::ZERO);
}

#[test]
fn fig10_without_crash_everything_commits() {
    let config = SimConfig::table_ii(2);
    let mut silo = SiloScheme::new(&config);
    let t1 = vec![tx(&[w(A, A1), w(B, B1)], 1), tx(&[w(A, A2), w(C, C1)], 1)];
    let t2 = vec![tx(&[w(D, 0xD1), w(E, 0xE1), w(E, 0xE2)], 1)];
    let out = Engine::new(&config, &mut silo).run(vec![t1, t2], None);
    assert_eq!(out.stats.txs_committed, 3);
    assert_eq!(out.pm.peek_word(PhysAddr::new(A)), Word::new(A2));
    assert_eq!(out.pm.peek_word(PhysAddr::new(E)), Word::new(0xE2));
    assert_eq!(
        out.stats.pm.log_region_writes, 0,
        "failure-free: no log writes"
    );
}

#[test]
fn fig10_crash_before_any_commit_revokes_everything() {
    let out = run_fig10(100, 64);
    let crash = out.crash.as_ref().expect("crash injected");
    assert!(crash.consistency.is_consistent(), "{:?}", crash.consistency);
    // Nothing may survive if nothing committed.
    if crash.committed_txs == 0 {
        for addr in [A, B, C, D, E, F, G, H] {
            assert_eq!(out.pm.peek_word(PhysAddr::new(addr)), Word::ZERO);
        }
    }
}
