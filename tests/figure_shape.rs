//! Invariants on the *shape* of the paper's headline results: the
//! orderings of Fig 11 (write traffic) and Fig 12 (throughput) and the
//! scalability claim, checked at reduced transaction counts so the suite
//! stays fast.

use silo::baselines::{BaseScheme, FwbScheme, LadScheme, MorLogScheme};
use silo::core::SiloScheme;
use silo::sim::{Engine, LoggingScheme, SimConfig, SimStats};
use silo::workloads::{workload_by_name, Workload};

fn run_raw(scheme_name: &str, bench: &str, cores: usize, txs: usize) -> SimStats {
    let config = SimConfig::table_ii(cores);
    let mut scheme: Box<dyn LoggingScheme> = match scheme_name {
        "Base" => Box::new(BaseScheme::new(&config)),
        "FWB" => Box::new(FwbScheme::new(&config)),
        "MorLog" => Box::new(MorLogScheme::new(&config)),
        "LAD" => Box::new(LadScheme::new(&config)),
        "Silo" => Box::new(SiloScheme::new(&config)),
        other => panic!("unknown scheme {other}"),
    };
    let w = workload_by_name(bench).expect("benchmark exists");
    let streams = w.raw_streams(cores, txs, 42);
    Engine::new(&config, scheme.as_mut())
        .run(streams, None)
        .stats
}

/// Steady-state measurement: run N and 2N transactions of the same
/// deterministic stream and subtract, excluding the setup transaction
/// (the same trick the figure generators use).
fn run(scheme_name: &str, bench: &str, cores: usize, txs: usize) -> SimStats {
    let long = run_raw(scheme_name, bench, cores, txs * 2);
    let short = run_raw(scheme_name, bench, cores, txs);
    long.delta_from(&short)
}

#[test]
fn fig11_shape_write_traffic_ordering_8_cores() {
    for bench in ["Hash", "TPCC", "YCSB"] {
        let base = run("Base", bench, 8, 150).media_writes() as f64;
        let fwb = run("FWB", bench, 8, 150).media_writes() as f64;
        let morlog = run("MorLog", bench, 8, 150).media_writes() as f64;
        let lad = run("LAD", bench, 8, 150).media_writes() as f64;
        let silo = run("Silo", bench, 8, 150).media_writes() as f64;
        assert!(fwb < base, "[{bench}] FWB below Base");
        assert!(morlog <= fwb * 1.01, "[{bench}] MorLog at or below FWB");
        assert!(lad < morlog, "[{bench}] LAD below MorLog");
        assert!(silo < morlog, "[{bench}] Silo below MorLog");
        // Headline: Silo cuts most of MorLog's traffic (paper: 76.5%).
        assert!(
            silo < 0.5 * morlog,
            "[{bench}] Silo {silo} vs MorLog {morlog}: expected large reduction"
        );
    }
}

#[test]
fn fig12_shape_throughput_ordering_8_cores() {
    // YCSB is excluded from the LAD > FWB check: its transactions touch a
    // single cacheline, so LAD's fixed Prepare drain is not amortized
    // (see EXPERIMENTS.md); all other orderings hold everywhere.
    for bench in ["Hash", "TPCC", "YCSB"] {
        let base = run("Base", bench, 8, 150).throughput();
        let fwb = run("FWB", bench, 8, 150).throughput();
        let lad = run("LAD", bench, 8, 150).throughput();
        let silo = run("Silo", bench, 8, 150).throughput();
        assert!(fwb > base, "[{bench}] FWB above Base");
        if bench != "YCSB" {
            assert!(lad > fwb, "[{bench}] LAD above FWB");
        }
        if bench != "TPCC" {
            // TPCC is this reproduction's one documented deviation: its
            // write sets overflow Silo's log buffer ~2x per transaction,
            // and the §III-F undo batches cost more here than in the
            // paper's memory system (see EXPERIMENTS.md).
            assert!(silo > lad, "[{bench}] Silo above LAD (paper: 1.5x)");
        }
        assert!(silo > 2.0 * base, "[{bench}] Silo well above Base");
    }
}

#[test]
fn fig12_shape_silo_advantage_grows_with_cores() {
    // "When using more CPU cores, Silo achieves higher throughput
    // improvements" (§VI-C).
    for bench in ["Hash", "YCSB"] {
        let speedup_1 =
            run("Silo", bench, 1, 300).throughput() / run("Base", bench, 1, 300).throughput();
        let speedup_8 =
            run("Silo", bench, 8, 80).throughput() / run("Base", bench, 8, 80).throughput();
        assert!(
            speedup_8 > speedup_1 * 1.5,
            "[{bench}] speedup must grow with cores: 1-core {speedup_1:.2}x, 8-core {speedup_8:.2}x"
        );
    }
}

#[test]
fn silo_writes_no_logs_in_failure_free_runs() {
    // Workloads parameterized with tiny setup transactions so nothing
    // overflows the 20-entry buffer — the pure common case. (A giant
    // setup transaction overflows and correctly writes §III-F undo
    // batches; the overflow path has its own tests.)
    let config = SimConfig::table_ii(1);
    let workloads: Vec<(&str, Box<dyn Workload>)> = vec![
        (
            "Bank",
            Box::new(silo::workloads::BankWorkload {
                accounts: 8,
                initial_balance: 100,
            }),
        ),
        (
            "TATP",
            Box::new(silo::workloads::TatpWorkload { subscribers: 4 }),
        ),
        (
            "Queue",
            Box::new(silo::workloads::QueueWorkload { setup_elements: 1 }),
        ),
    ];
    for (name, w) in workloads {
        let mut scheme = SiloScheme::new(&config);
        let streams = w.raw_streams(1, 100, 21);
        let out = Engine::new(&config, &mut scheme).run(streams, None);
        assert_eq!(
            out.stats.scheme_stats.overflow_events, 0,
            "[{name}] no overflow"
        );
        assert_eq!(
            out.stats.pm.log_region_writes, 0,
            "[{name}] the common case must write zero log bytes"
        );
    }
}

#[test]
fn baselines_always_write_logs() {
    for scheme in ["Base", "FWB", "MorLog"] {
        let stats = run(scheme, "Bank", 1, 50);
        assert!(
            stats.pm.log_region_writes > 0,
            "[{scheme}] conservative logging writes the log region every tx"
        );
    }
}

#[test]
fn lad_like_silo_writes_no_logs_but_stalls_at_commit() {
    let lad = run("LAD", "Queue", 1, 200);
    let silo = run("Silo", "Queue", 1, 200);
    assert_eq!(lad.pm.log_region_writes, 0, "LAD is logless in-common-case");
    // The Prepare drain makes LAD slower than Silo even at one core on a
    // low-locality workload (§VI-C's Array/Queue argument).
    assert!(
        silo.throughput() > lad.throughput(),
        "Silo {} vs LAD {}",
        silo.throughput(),
        lad.throughput()
    );
}

#[test]
fn write_traffic_accounting_is_internally_consistent() {
    for scheme in ["Base", "FWB", "MorLog", "LAD", "Silo"] {
        let stats = run(scheme, "Hash", 2, 100);
        let s = stats.pm;
        assert_eq!(
            s.accepted_writes,
            s.data_region_writes + s.log_region_writes,
            "[{scheme}] region split covers all accepted writes"
        );
        // A write-through request spanning an on-PM buffer line boundary
        // programs up to two lines; staged writes program one per fill.
        assert!(
            s.media_line_writes <= 2 * s.accepted_writes + s.buffer_fills,
            "[{scheme}] media programs bounded by write activity"
        );
    }
}
