//! Atomic durability under crash injection, for every scheme.
//!
//! The oracle checks the recovered PM image for the paper's §II-A
//! property: all-or-nothing per transaction, durable after commit. The
//! banking workload adds a semantic check on top: money is conserved
//! across any crash, because every transfer either fully applies or fully
//! rolls back.

use silo::baselines::{BaseScheme, FwbScheme, LadScheme, MorLogScheme};
use silo::core::SiloScheme;
use silo::sim::{Engine, LoggingScheme, SimConfig};
use silo::types::{Cycles, PhysAddr};
use silo::workloads::{BankWorkload, HashWorkload, QueueWorkload, Workload};

fn schemes(config: &SimConfig) -> Vec<Box<dyn LoggingScheme>> {
    vec![
        Box::new(BaseScheme::new(config)),
        Box::new(FwbScheme::new(config)),
        Box::new(MorLogScheme::new(config)),
        Box::new(LadScheme::new(config)),
        Box::new(SiloScheme::new(config)),
    ]
}

#[test]
fn all_schemes_survive_crash_sweep_on_bank() {
    let cores = 2;
    let workload = BankWorkload {
        accounts: 128,
        initial_balance: 500,
    };
    for crash_at in (100..40_000).step_by(2_341) {
        let config = SimConfig::table_ii(cores);
        for mut scheme in schemes(&config) {
            let name = scheme.name();
            let streams = workload.generate(cores, 120, 11);
            let out =
                Engine::new(&config, scheme.as_mut()).run(streams, Some(Cycles::new(crash_at)));
            let crash = out.crash.expect("crash injected");
            assert!(
                crash.consistency.is_consistent(),
                "[{name}] crash at {crash_at}: {:?}",
                crash.consistency.violations
            );
            // Money conservation: every account balance word as recovered.
            // Accounts written by no committed tx read as their setup value.
            let total: u64 = (0..128u64)
                .map(|a| {
                    out.pm
                        .peek_word(PhysAddr::new((1 + a * 2) * 8)) // core 0's region base is 0
                        .as_u64()
                })
                .fold(0, |acc, b| acc.wrapping_add(b));
            // Only check core 0's region (core 1's uses its own base).
            if crash.committed_txs > 0 {
                assert_eq!(
                    total,
                    128 * 500,
                    "[{name}] money not conserved at {crash_at}"
                );
            }
        }
    }
}

#[test]
fn all_schemes_survive_crash_sweep_on_hash() {
    let cores = 2;
    let workload = HashWorkload {
        buckets: 64,
        setup_inserts: 8,
        ..HashWorkload::default()
    };
    for crash_at in (500..30_000).step_by(3_163) {
        let config = SimConfig::table_ii(cores);
        for mut scheme in schemes(&config) {
            let name = scheme.name();
            let streams = workload.generate(cores, 60, 13);
            let out =
                Engine::new(&config, scheme.as_mut()).run(streams, Some(Cycles::new(crash_at)));
            let crash = out.crash.expect("crash injected");
            assert!(
                crash.consistency.is_consistent(),
                "[{name}] crash at {crash_at}: {:?}",
                crash.consistency.violations
            );
        }
    }
}

#[test]
fn all_schemes_survive_crash_sweep_on_queue() {
    let cores = 1;
    let workload = QueueWorkload { setup_elements: 4 };
    for crash_at in (200..25_000).step_by(1_987) {
        let config = SimConfig::table_ii(cores);
        for mut scheme in schemes(&config) {
            let name = scheme.name();
            let streams = workload.generate(cores, 80, 17);
            let out =
                Engine::new(&config, scheme.as_mut()).run(streams, Some(Cycles::new(crash_at)));
            let crash = out.crash.expect("crash injected");
            assert!(
                crash.consistency.is_consistent(),
                "[{name}] crash at {crash_at}: {:?}",
                crash.consistency.violations
            );
        }
    }
}

#[test]
fn silo_redo_window_crashes_are_consistent() {
    // Stress the §III-G case-2 window specifically: huge drain delay means
    // every crash after a commit lands in the committed-but-unflushed
    // state and must recover via redo replay.
    use silo::core::SiloOptions;
    let workload = BankWorkload {
        accounts: 64,
        initial_balance: 100,
    };
    for crash_at in (1_000..20_000).step_by(777) {
        let config = SimConfig::table_ii(1);
        let mut scheme = SiloScheme::with_options(
            &config,
            SiloOptions {
                ipu_drain_delay: 50_000_000,
                ..SiloOptions::default()
            },
        );
        let streams = workload.generate(1, 100, 19);
        let out = Engine::new(&config, &mut scheme).run(streams, Some(Cycles::new(crash_at)));
        let crash = out.crash.expect("crash injected");
        assert!(
            crash.consistency.is_consistent(),
            "crash at {crash_at}: {:?}",
            crash.consistency.violations
        );
        if crash.committed_txs > 1 {
            assert!(
                crash.recovery.replayed_words > 0,
                "crash at {crash_at} should exercise redo replay"
            );
        }
    }
}
