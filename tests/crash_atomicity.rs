//! Atomic durability under crash injection, for every scheme.
//!
//! The oracle checks the recovered PM image for the paper's §II-A
//! property: all-or-nothing per transaction, durable after commit. The
//! banking workload adds a semantic check on top: money is conserved
//! across any crash, because every transfer either fully applies or fully
//! rolls back.
//!
//! Two crash surfaces are swept: the legacy cycle-sampled triggers (power
//! fails at an op boundary once a core's clock passes the cut) and the
//! event-indexed triggers (power fails at the N-th durability event —
//! store, log drain, WPQ admission, line program — which lands *inside*
//! commit protocols instead of between transactions).

use silo::baselines::{
    BaseScheme, EadrSwLogScheme, FwbScheme, LadScheme, MorLogScheme, SwLogScheme,
};
use silo::core::SiloScheme;
use silo::sim::{CrashPlan, Engine, FaultModel, LoggingScheme, SimConfig};
use silo::types::Cycles;
use silo::workloads::{workload_by_name, BankWorkload, HashWorkload, QueueWorkload, Workload};

fn schemes(config: &SimConfig) -> Vec<Box<dyn LoggingScheme>> {
    vec![
        Box::new(BaseScheme::new(config)),
        Box::new(FwbScheme::new(config)),
        Box::new(MorLogScheme::new(config)),
        Box::new(LadScheme::new(config)),
        Box::new(SwLogScheme::new(config)),
        Box::new(EadrSwLogScheme::new(config)),
        Box::new(SiloScheme::new(config)),
    ]
}

#[test]
fn all_schemes_survive_crash_sweep_on_bank() {
    let cores = 2;
    let workload = BankWorkload {
        accounts: 128,
        initial_balance: 500,
    };
    for crash_at in (100..40_000).step_by(2_341) {
        let config = SimConfig::table_ii(cores);
        for mut scheme in schemes(&config) {
            let name = scheme.name();
            let streams = workload.raw_streams(cores, 120, 11);
            let out =
                Engine::new(&config, scheme.as_mut()).run(streams, Some(Cycles::new(crash_at)));
            let crash = out.crash.expect("crash injected");
            assert!(
                crash.consistency.is_consistent(),
                "[{name}] crash at {crash_at}: {:?}",
                crash.consistency.violations
            );
            // Money conservation: every account balance word as recovered.
            // Accounts written by no committed tx read as their setup value.
            // Only check core 0's region (core 1's uses its own base).
            let total: u64 = (0..128u64)
                .map(|a| out.pm.peek_word(workload.account_addr(0, a)).as_u64())
                .fold(0, |acc, b| acc.wrapping_add(b));
            if crash.committed_txs > 0 {
                assert_eq!(
                    total,
                    128 * 500,
                    "[{name}] money not conserved at {crash_at}"
                );
            }
        }
    }
}

#[test]
fn all_schemes_survive_crash_sweep_on_hash() {
    let cores = 2;
    let workload = HashWorkload {
        buckets: 64,
        setup_inserts: 8,
        ..HashWorkload::default()
    };
    for crash_at in (500..30_000).step_by(3_163) {
        let config = SimConfig::table_ii(cores);
        for mut scheme in schemes(&config) {
            let name = scheme.name();
            let streams = workload.raw_streams(cores, 60, 13);
            let out =
                Engine::new(&config, scheme.as_mut()).run(streams, Some(Cycles::new(crash_at)));
            let crash = out.crash.expect("crash injected");
            assert!(
                crash.consistency.is_consistent(),
                "[{name}] crash at {crash_at}: {:?}",
                crash.consistency.violations
            );
        }
    }
}

#[test]
fn all_schemes_survive_crash_sweep_on_queue() {
    let cores = 1;
    let workload = QueueWorkload { setup_elements: 4 };
    for crash_at in (200..25_000).step_by(1_987) {
        let config = SimConfig::table_ii(cores);
        for mut scheme in schemes(&config) {
            let name = scheme.name();
            let streams = workload.raw_streams(cores, 80, 17);
            let out =
                Engine::new(&config, scheme.as_mut()).run(streams, Some(Cycles::new(crash_at)));
            let crash = out.crash.expect("crash injected");
            assert!(
                crash.consistency.is_consistent(),
                "[{name}] crash at {crash_at}: {:?}",
                crash.consistency.violations
            );
        }
    }
}

/// Event-indexed sweep: for each scheme × workload, measure the clean
/// run's durability-event total, then crash at a handful of evenly spaced
/// event indices. Unlike the cycle sweeps above, these cuts land in the
/// middle of log drains and commit-marker writes.
#[test]
fn all_schemes_survive_event_indexed_crashes_on_btree_tpcc_ycsb() {
    let cores = 2;
    let txs_per_core = 24;
    const POINTS: u64 = 4;
    for bench in ["Btree", "TPCC", "YCSB"] {
        let workload = workload_by_name(bench).expect("benchmark");
        let config = SimConfig::table_ii(cores);
        for clean_scheme in schemes(&config) {
            let name = clean_scheme.name();
            let mut clean_scheme = clean_scheme;
            let clean = Engine::new(&config, clean_scheme.as_mut())
                .run(workload.raw_streams(cores, txs_per_core, 23), None);
            let total = clean.pm.events().total();
            assert!(total > POINTS, "[{name}/{bench}] too few events: {total}");
            for i in 0..POINTS {
                // Evenly spaced interior points: (2i+1)/(2K) of the run.
                let n = (total * (2 * i + 1)) / (2 * POINTS);
                let mut scheme = schemes(&config)
                    .into_iter()
                    .find(|s| s.name() == name)
                    .expect("same scheme");
                let out = Engine::new(&config, scheme.as_mut()).run_with_plan(
                    workload.raw_streams(cores, txs_per_core, 23),
                    Some(CrashPlan::at_event(n)),
                );
                let crash = out.crash.expect("crash injected");
                assert_eq!(crash.events_at_crash.total(), n, "[{name}/{bench}]");
                assert!(
                    crash.consistency.is_consistent(),
                    "[{name}/{bench}] crash at event {n}: {:?}",
                    crash.consistency.violations
                );
            }
        }
    }
}

/// Double crash: power fails again after the first recovery write. The
/// second recovery pass must be idempotent — same consistent image.
#[test]
fn silo_and_lad_survive_a_crash_during_recovery() {
    let workload = BankWorkload {
        accounts: 64,
        initial_balance: 200,
    };
    let config = SimConfig::table_ii(1);
    type SchemeMaker<'a> = Box<dyn Fn() -> Box<dyn LoggingScheme> + 'a>;
    let makers: Vec<(&str, SchemeMaker)> = vec![
        ("Silo", Box::new(|| Box::new(SiloScheme::new(&config)))),
        ("LAD", Box::new(|| Box::new(LadScheme::new(&config)))),
    ];
    for (name, make) in makers {
        let mut saw_double_crash = false;
        for crash_at in (1_000..20_000).step_by(3_777) {
            for recovery_steps in [1, 2, 5] {
                let mut scheme = make();
                let plan =
                    CrashPlan::at_cycle(Cycles::new(crash_at)).with_recovery_crash(recovery_steps);
                let out = Engine::new(&config, scheme.as_mut())
                    .run_with_plan(workload.raw_streams(1, 80, 29), Some(plan));
                let crash = out.crash.expect("crash injected");
                saw_double_crash |= crash.double_crash;
                assert!(
                    crash.consistency.is_consistent(),
                    "[{name}] crash at {crash_at}, re-crash after {recovery_steps} \
                     recovery writes: {:?}",
                    crash.consistency.violations
                );
            }
        }
        assert!(
            saw_double_crash,
            "[{name}] sweep never hit a mid-recovery re-crash"
        );
    }
}

/// Fault models: torn line programs and a generously sized battery must
/// both recover consistently (the ADR copy of a torn line survives, and
/// the budget covers the full staged working set).
#[test]
fn silo_survives_torn_lines_and_bounded_battery_crashes() {
    let workload = HashWorkload {
        buckets: 64,
        setup_inserts: 8,
        ..HashWorkload::default()
    };
    let config = SimConfig::table_ii(2);
    for fault in [
        FaultModel::torn_line(64),
        FaultModel::bounded_battery(64 * 1024),
        FaultModel::torn_line(16).with_battery_budget(64 * 1024),
    ] {
        for n in [40u64, 400, 4_000] {
            let mut scheme = SiloScheme::new(&config);
            let out = Engine::new(&config, &mut scheme).run_with_plan(
                workload.raw_streams(2, 40, 31),
                Some(CrashPlan::at_event(n).with_fault(fault)),
            );
            let crash = out.crash.expect("crash injected");
            assert!(
                crash.consistency.is_consistent(),
                "crash at event {n} under {fault:?}: {:?}",
                crash.consistency.violations
            );
        }
    }
}

/// Regression: the image the oracle certified is the image the run
/// returns, and crash-run traffic counters freeze at power loss — the
/// post-crash drain and recovery traffic must not leak into them.
#[test]
fn crash_outcome_image_and_stats_are_the_verified_snapshot() {
    let workload = BankWorkload {
        accounts: 64,
        initial_balance: 100,
    };
    let config = SimConfig::table_ii(1);
    let mut scheme = SiloScheme::new(&config);
    let out = Engine::new(&config, &mut scheme)
        .run(workload.raw_streams(1, 60, 37), Some(Cycles::new(9_000)));
    let crash = out.crash.expect("crash injected");
    assert!(crash.consistency.is_consistent());
    // The returned device accumulated the crash-sequence traffic (drain,
    // recovery); the run's stats stopped counting at the power cut.
    let final_stats = out.pm.stats();
    assert!(
        final_stats.accepted_writes > out.stats.pm.accepted_writes,
        "recovery traffic should be visible on the device ({} vs {}), \
         never in the frozen run counters",
        final_stats.accepted_writes,
        out.stats.pm.accepted_writes
    );
    // And a clean run of the same workload keeps the two in lockstep.
    let mut scheme = SiloScheme::new(&config);
    let clean = Engine::new(&config, &mut scheme).run(workload.raw_streams(1, 60, 37), None);
    assert_eq!(clean.stats.pm, clean.pm.stats());
}
