//! Every workload runs to completion under every scheme, and the Fig 4
//! premise (small write sets) holds for the whole suite.

use silo::baselines::{BaseScheme, FwbScheme, LadScheme, MorLogScheme};
use silo::core::SiloScheme;
use silo::sim::{Engine, LoggingScheme, SimConfig};
use silo::workloads::{fig4_set, Workload};

fn schemes(config: &SimConfig) -> Vec<Box<dyn LoggingScheme>> {
    vec![
        Box::new(BaseScheme::new(config)),
        Box::new(FwbScheme::new(config)),
        Box::new(MorLogScheme::new(config)),
        Box::new(LadScheme::new(config)),
        Box::new(SiloScheme::new(config)),
    ]
}

#[test]
fn every_workload_commits_under_every_scheme() {
    let cores = 2;
    let txs = 40;
    for workload in fig4_set() {
        let config = SimConfig::table_ii(cores);
        for mut scheme in schemes(&config) {
            let name = scheme.name();
            let streams = workload.raw_streams(cores, txs, 3);
            let expected: u64 = streams.iter().map(|s| s.len() as u64).sum();
            let out = Engine::new(&config, scheme.as_mut()).run(streams, None);
            assert_eq!(
                out.stats.txs_committed,
                expected,
                "[{name} / {}]",
                workload.name()
            );
            assert!(out.stats.sim_cycles.as_u64() > 0);
        }
    }
}

#[test]
fn fig4_premise_write_sets_are_small() {
    // §II-E: "the write size is generally less than 0.5 KB per
    // transaction" — the observation that justifies a 20-entry buffer.
    for workload in fig4_set() {
        let streams = workload.raw_streams(1, 300, 4);
        let measured = &streams[0][1..];
        let avg: f64 = measured
            .iter()
            .map(|t| t.write_set_bytes() as f64)
            .sum::<f64>()
            / measured.len() as f64;
        assert!(
            avg < 520.0,
            "[{}] average write set {avg:.0} B exceeds the paper's premise",
            workload.name()
        );
        assert!(
            avg > 0.0 || workload.name() == "TATP",
            "[{}] workload writes nothing?",
            workload.name()
        );
    }
}

#[test]
fn per_core_streams_touch_disjoint_regions() {
    for workload in fig4_set() {
        let streams = workload.raw_streams(4, 20, 9);
        let mut seen: Vec<std::collections::BTreeSet<u64>> = Vec::new();
        for stream in &streams {
            let mut region = std::collections::BTreeSet::new();
            for tx in stream {
                for op in tx.ops() {
                    if let silo::sim::Op::Write(a, _) = op {
                        region.insert(a.as_u64() / silo::workloads::CORE_REGION_BYTES);
                    }
                }
            }
            seen.push(region);
        }
        for i in 0..seen.len() {
            for j in i + 1..seen.len() {
                assert!(
                    seen[i].is_disjoint(&seen[j]),
                    "[{}] cores {i} and {j} share 64MiB regions",
                    workload.name()
                );
            }
        }
    }
}

#[test]
fn multicore_partitioning_mirrors_multi_mc_affinity() {
    // §III-D's multiple-MC argument: logs and in-place updates of one
    // transaction always target the same controller because one thread
    // executes the whole transaction. In the model this shows up as a
    // per-core log area and a per-core data region; verify a multi-core
    // Silo run keeps each thread's log-region traffic inside its own area.
    let cores = 4;
    let config = SimConfig::table_ii(cores);
    let mut scheme = SiloScheme::new(&config);
    // Two hash inserts per transaction: ~38 surviving entries, well past
    // the 20-entry buffer, so §III-F overflow batches hit the log region.
    let w = silo::workloads::HashWorkload {
        buckets: 64,
        setup_inserts: 0,
        mix: silo::workloads::HashMix::InsertOnly,
    };
    let streams = w.raw_streams(cores, 200, 5);
    let batched: Vec<_> = streams
        .into_iter()
        .map(|stream| {
            stream
                .chunks(2)
                .map(|pair| {
                    let mut ops = Vec::new();
                    for tx in pair {
                        ops.extend_from_slice(tx.ops());
                    }
                    silo::sim::Transaction::new(ops)
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let expected: u64 = batched.iter().map(|s| s.len() as u64).sum();
    let out = Engine::new(&config, &mut scheme).run(batched, None);
    // Overflows happened and were all serviced without aborts.
    assert!(out.stats.scheme_stats.overflow_events > 0);
    assert!(out.stats.pm.log_region_writes > 0);
    assert_eq!(out.stats.txs_committed, expected);
}

#[test]
fn multi_mc_silo_is_consistent_and_scales() {
    // §III-D: Silo needs no cross-controller coordination — results stay
    // correct with multiple MCs, and MC-bound workloads speed up.
    use silo::types::Cycles;
    let w = silo::workloads::TpccWorkload::default();
    let mut tp = Vec::new();
    for mcs in [1usize, 2] {
        let mut config = SimConfig::table_ii(4);
        config.num_mcs = mcs;
        let mut scheme = SiloScheme::new(&config);
        let streams = w.raw_streams(4, 150, 7);
        let out = Engine::new(&config, &mut scheme).run(streams, None);
        assert_eq!(out.stats.txs_committed, (150 + 1) * 4);
        tp.push(out.stats.throughput());
    }
    assert!(tp[1] >= tp[0] * 0.99, "more controllers never hurt: {tp:?}");

    // And crash consistency holds with 2 controllers.
    let mut config = SimConfig::table_ii(4);
    config.num_mcs = 2;
    let mut scheme = SiloScheme::new(&config);
    let streams = w.raw_streams(4, 150, 7);
    let out = Engine::new(&config, &mut scheme).run(streams, Some(Cycles::new(60_000)));
    let crash = out.crash.expect("crash injected");
    assert!(
        crash.consistency.is_consistent(),
        "{:?}",
        crash.consistency.violations
    );
}
