//! # Silo — speculative hardware logging for atomic durability in PM
//!
//! A full-system Rust reproduction of *Silo: Speculative Hardware Logging
//! for Atomic Durability in Persistent Memory* (HPCA 2023), re-exporting
//! the whole workspace behind one facade:
//!
//! * [`core`] — the Silo design itself ([`core::SiloScheme`]).
//! * [`baselines`] — Base, FWB, MorLog, and LAD for comparison.
//! * [`sim`] — the multicore discrete-event simulator with crash
//!   injection and the atomic-durability oracle.
//! * [`pm`], [`cache`], [`memctrl`] — the memory-system substrates.
//! * [`workloads`] — the eleven transactional benchmarks of the paper.
//! * [`types`] — shared value types.
//!
//! # Quickstart
//!
//! ```
//! use silo::core::SiloScheme;
//! use silo::sim::{Engine, SimConfig, Transaction};
//! use silo::types::{PhysAddr, Word};
//!
//! // A one-core Table II machine running one transaction under Silo.
//! let config = SimConfig::table_ii(1);
//! let mut scheme = SiloScheme::new(&config);
//! let tx = Transaction::builder()
//!     .write(PhysAddr::new(0), Word::new(1))
//!     .write(PhysAddr::new(8), Word::new(2))
//!     .build();
//! let out = Engine::new(&config, &mut scheme).run(vec![vec![tx]], None);
//! assert_eq!(out.stats.txs_committed, 1);
//! // The fast path wrote no logs to PM at all.
//! assert_eq!(out.stats.pm.log_region_writes, 0);
//! ```
//!
//! See `examples/` for crash-recovery, YCSB, banking and overflow-stress
//! walkthroughs, and `crates/bench` for the binaries that regenerate every
//! table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use silo_baselines as baselines;
pub use silo_cache as cache;
pub use silo_core as core;
pub use silo_memctrl as memctrl;
pub use silo_pm as pm;
pub use silo_sim as sim;
pub use silo_types as types;
pub use silo_workloads as workloads;
