//! Index maintenance under churn: persistent B-tree and red-black-tree
//! indexes taking a mixed insert/delete stream (the write patterns of a
//! real storage engine's secondary indexes), with a crash in the middle.
//!
//! Tree deletions rebalance aggressively — borrows, merges, rotations —
//! producing exactly the scattered small writes hardware logging is built
//! for. This example runs the churn under Silo, crashes it, and lets the
//! atomic-durability oracle judge the recovered image.
//!
//! ```text
//! cargo run --release --example index_maintenance [crash-cycle]
//! ```

use silo::core::SiloScheme;
use silo::sim::{Engine, SimConfig};
use silo::types::Cycles;
use silo::workloads::{BtreeWorkload, RbtreeWorkload, Workload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let crash_at: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(150_000);

    // Core 0 churns a B-tree, core 1 a red-black tree: 35 % deletes.
    let cores = 2;
    let config = SimConfig::table_ii(cores);
    let btree = BtreeWorkload {
        setup_inserts: 256,
        delete_percent: 35,
    };
    let rbtree = RbtreeWorkload {
        setup_inserts: 256,
        delete_percent: 35,
    };
    let streams = vec![
        btree.raw_streams(1, 800, 5).remove(0),
        // The RB-tree stream is generated for core index 1 so its
        // addresses land in core 1's private region.
        rbtree.raw_streams(2, 800, 5).remove(1),
    ];

    println!("two cores churning persistent tree indexes (35% deletes);");
    println!("power fails at cycle {crash_at}...\n");

    let mut silo = SiloScheme::new(&config);
    let out = Engine::new(&config, &mut silo).run(streams, Some(Cycles::new(crash_at)));

    println!(
        "committed {} index operations before the crash ({} in flight)",
        out.crash.as_ref().map(|c| c.committed_txs).unwrap_or(0),
        out.crash.as_ref().map(|c| c.inflight_txs).unwrap_or(0),
    );
    println!(
        "log reduction during the run: {} generated, {} ignored, {} merged",
        out.stats.scheme_stats.log_entries_generated,
        out.stats.scheme_stats.log_entries_ignored,
        out.stats.scheme_stats.log_entries_merged,
    );
    let crash = out.crash.expect("crash injected");
    println!(
        "recovery: {} redo words replayed, {} undo words revoked",
        crash.recovery.replayed_words, crash.recovery.revoked_words
    );
    assert!(
        crash.consistency.is_consistent(),
        "atomic durability violated: {:?}",
        crash.consistency.violations
    );
    println!(
        "\natomic-durability check over {} words: CONSISTENT",
        crash.consistency.words_checked
    );
    println!("every interrupted rebalance (borrow/merge/rotation) rolled back whole.");
}
