//! A YCSB-style key-value store (paper Table III macro-benchmark) on all
//! five logging schemes — the workload the paper's intro motivates:
//! transactional updates of persistent key-value items.
//!
//! ```text
//! cargo run --release --example kvstore_ycsb [txs-per-core] [cores]
//! ```

use silo::baselines::{BaseScheme, FwbScheme, LadScheme, MorLogScheme};
use silo::core::SiloScheme;
use silo::sim::{Engine, LoggingScheme, SimConfig};
use silo::workloads::{Workload, YcsbWorkload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let txs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2_000);
    let cores: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);

    let workload = YcsbWorkload::default(); // 20% reads / 80% updates
    let config = SimConfig::table_ii(cores);

    println!(
        "YCSB (20/80 read/update, {} keys/core) x {txs} txs/core on {cores} cores\n",
        workload.keys
    );
    println!(
        "{:<8}{:>14}{:>14}{:>16}{:>14}",
        "scheme", "tx/kcycle", "media writes", "log-region wr", "vs Base tp"
    );

    let mut base_tp = 0.0;
    let schemes: Vec<Box<dyn LoggingScheme>> = vec![
        Box::new(BaseScheme::new(&config)),
        Box::new(FwbScheme::new(&config)),
        Box::new(MorLogScheme::new(&config)),
        Box::new(LadScheme::new(&config)),
        Box::new(SiloScheme::new(&config)),
    ];
    for mut scheme in schemes {
        let name = scheme.name();
        let streams = workload.raw_streams(cores, txs, 42);
        let out = Engine::new(&config, scheme.as_mut()).run(streams, None);
        let tp = out.stats.throughput();
        if name == "Base" {
            base_tp = tp;
        }
        println!(
            "{:<8}{:>14.4}{:>14}{:>16}{:>13.2}x",
            name,
            tp,
            out.stats.media_writes(),
            out.stats.pm.log_region_writes,
            tp / base_tp
        );
    }
    println!(
        "\nThe ordering mirrors the paper's Fig 11/12: Silo commits without\n\
         waiting on any PM write and sends no log traffic, so it wins on both\n\
         axes; the gap widens with the core count (try `... 2000 8`)."
    );
}
