//! Crash a banking workload mid-flight and watch Silo's selective log
//! flushing and recovery (§III-G) restore atomic durability — the Fig 10
//! story on a real workload.
//!
//! ```text
//! cargo run --release --example banking_crash [crash-cycle]
//! ```

use silo::core::SiloScheme;
use silo::sim::{Engine, SimConfig};
use silo::types::Cycles;
use silo::workloads::{BankWorkload, Workload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let crash_at: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(25_000);

    let cores = 4;
    let config = SimConfig::table_ii(cores);
    let workload = BankWorkload {
        accounts: 512,
        initial_balance: 1_000,
    };

    println!("4 cores transferring money between 512 accounts each;");
    println!("power fails at cycle {crash_at}...\n");

    let mut silo = SiloScheme::new(&config);
    let streams = workload.raw_streams(cores, 500, 7);
    let out = Engine::new(&config, &mut silo).run(streams, Some(Cycles::new(crash_at)));
    let crash = out.crash.expect("crash was injected");

    println!(
        "committed before the crash: {:>6} transactions",
        crash.committed_txs
    );
    println!(
        "in flight at the crash:     {:>6} transactions",
        crash.inflight_txs
    );
    println!("\nrecovery:");
    println!(
        "  committed txs found in the log region: {}",
        crash.recovery.committed_txs
    );
    println!(
        "  redo words replayed:  {:>6}",
        crash.recovery.replayed_words
    );
    println!(
        "  undo words revoked:   {:>6}",
        crash.recovery.revoked_words
    );
    println!(
        "  stale logs discarded: {:>6}",
        crash.recovery.discarded_logs
    );

    println!(
        "\natomic-durability check over {} words:",
        crash.consistency.words_checked
    );
    if crash.consistency.is_consistent() {
        println!("  CONSISTENT — every committed transfer persisted in full,");
        println!("  every in-flight transfer rolled back in full.");
    } else {
        println!("  VIOLATIONS: {:#?}", crash.consistency.violations);
        std::process::exit(1);
    }
    println!(
        "\n(Try different crash cycles — every point in the execution, including\n\
         mid-commit, must satisfy the all-or-nothing check. The integration\n\
         test suite sweeps hundreds of them, for all seven schemes.)"
    );
}
