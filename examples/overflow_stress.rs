//! Stress the §III-F log-overflow path: transactions whose write sets are
//! many times the 20-entry log buffer, the paper's Fig 14 scenario.
//! Verifies that Silo neither aborts nor loses atomic durability when a
//! crash lands in the middle of an overflowing transaction.
//!
//! ```text
//! cargo run --release --example overflow_stress
//! ```

use silo::core::SiloScheme;
use silo::sim::{Engine, SimConfig, Transaction};
use silo::types::{Cycles, PhysAddr, Word};

/// One giant transaction: `words` distinct word writes (write set =
/// `words / 20` log buffers).
fn giant_tx(base: u64, words: u64, stamp: u64) -> Transaction {
    let mut b = Transaction::builder();
    for i in 0..words {
        b = b.write(PhysAddr::new(base + i * 8), Word::new(stamp + i));
    }
    b.build()
}

fn main() {
    let config = SimConfig::table_ii(1);

    println!("write sets of 1x..16x the 20-entry log buffer, no crash:");
    println!(
        "{:>6}{:>14}{:>12}{:>16}",
        "mult", "overflows", "log wr", "committed"
    );
    for mult in [1u64, 2, 4, 8, 16] {
        let mut silo = SiloScheme::new(&config);
        let txs: Vec<Transaction> = (0..20)
            .map(|i| giant_tx(i << 20, 20 * mult, 1000 * i))
            .collect();
        let out = Engine::new(&config, &mut silo).run(vec![txs], None);
        println!(
            "{:>5}x{:>14}{:>12}{:>16}",
            mult,
            out.stats.scheme_stats.overflow_events,
            out.stats.pm.log_region_writes,
            out.stats.txs_committed
        );
    }
    println!("\n(no transaction aborted: §III-F handles overflow by evicting");
    println!(" batched undo logs, 14 entries per on-PM buffer line)\n");

    // Now crash in the middle of an overflowing transaction and verify
    // the overflowed undo logs revoke every partial update.
    println!("crashing mid-way through a 16x transaction...");
    let mut silo = SiloScheme::new(&config);
    let txs = vec![giant_tx(0, 320, 5)];
    let out = Engine::new(&config, &mut silo).run(vec![txs], Some(Cycles::new(2_000)));
    let crash = out.crash.expect("crash injected");
    assert_eq!(crash.committed_txs, 0, "the giant tx was still running");
    println!(
        "  revoked {} words ({} from overflowed undo batches already in PM)",
        crash.recovery.revoked_words,
        crash.recovery.revoked_words.saturating_sub(20)
    );
    assert!(
        crash.consistency.is_consistent(),
        "atomicity violated: {:?}",
        crash.consistency.violations
    );
    println!(
        "  consistency check over {} words: CONSISTENT",
        crash.consistency.words_checked
    );
}
