//! Quickstart: run one transactional workload under Silo and a baseline,
//! and compare what the paper's two headline metrics look like.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use silo::baselines::BaseScheme;
use silo::core::SiloScheme;
use silo::sim::{Engine, LoggingScheme, SimConfig, Transaction};
use silo::types::{PhysAddr, Word};

fn main() {
    // The paper's Table II machine with 2 cores.
    let config = SimConfig::table_ii(2);

    // Hand-built transactions: core 0 updates three words of a record,
    // core 1 appends to a log-structured region. (Real workloads live in
    // silo::workloads — see the other examples.)
    let streams = || {
        vec![
            vec![
                Transaction::builder()
                    .write(PhysAddr::new(0x100), Word::new(1))
                    .write(PhysAddr::new(0x108), Word::new(2))
                    .write(PhysAddr::new(0x110), Word::new(3))
                    .build(),
                Transaction::builder()
                    .write(PhysAddr::new(0x100), Word::new(4)) // rewrite: merges on chip
                    .write(PhysAddr::new(0x100), Word::new(5))
                    .build(),
            ],
            vec![Transaction::builder()
                .write(PhysAddr::new(0x40_0000), Word::new(7))
                .compute(50)
                .write(PhysAddr::new(0x40_0008), Word::new(8))
                .build()],
        ]
    };

    println!("running 3 transactions on 2 cores under Silo and Base...\n");
    for (name, mut scheme) in [
        (
            "Silo",
            Box::new(SiloScheme::new(&config)) as Box<dyn LoggingScheme>,
        ),
        ("Base", Box::new(BaseScheme::new(&config))),
    ] {
        let out = Engine::new(&config, scheme.as_mut()).run(streams(), None);
        println!(
            "[{name}] {} txs committed in {}",
            out.stats.txs_committed, out.stats.sim_cycles
        );
        println!(
            "       PM media line programs: {:>3}   log-region writes: {:>3}",
            out.stats.media_writes(),
            out.stats.pm.log_region_writes
        );
        println!("       scheme: {}\n", out.stats.scheme_stats);
    }
    println!(
        "Silo's fast path wrote zero log-region bytes: the on-chip logs were\n\
         used as data (in-place updates) instead of being written as backups."
    );
}
